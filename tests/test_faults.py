"""The fault-injection subsystem: plans, mechanics, detection, recovery.

Three layers under test, matching the subsystem's division of labour:

* :mod:`repro.faults.plan` — pure data, validated and serialisable;
* :class:`repro.faults.watchdog.Watchdog` — symptom-only detection,
  exercised against hand-built NFs with explicit tick times;
* the end-to-end injector + policy pipeline — small Scenario runs that
  break an NF mid-run and assert on the resulting incident log.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import Scenario, build_linear_chain
from repro.faults.injector import FaultInjector
from repro.faults.metrics import availability, latency_stats, throughput_dip
from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    activate_plan,
    current_plan,
    deactivate_plan,
)
from repro.faults.recovery import RECOVERY_POLICIES, RestartPolicy, make_policy
from repro.faults.watchdog import Watchdog
from repro.nfs.cost_models import FixedCost, ScaledCost
from repro.platform.packet import Flow
from repro.sched import Core, make_scheduler
from repro.sim.clock import MSEC, SEC

# ---------------------------------------------------------------------------
# Plan validation and serialisation
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_round_trip(self):
        spec = FaultSpec(kind="slowdown", target="nf2", at_s=0.5,
                         duration_s=0.1, factor=8.0)
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_to_dict_prunes_defaults(self):
        d = FaultSpec(kind="crash", target="nf1", at_s=0.1).to_dict()
        assert d == {"kind": "crash", "target": "nf1", "at_s": 0.1}

    def test_factor_kept_only_for_slowdown(self):
        assert "factor" in FaultSpec(kind="slowdown", target="x",
                                     at_s=0.0).to_dict()
        assert "factor" not in FaultSpec(kind="hang", target="x",
                                         at_s=0.0).to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor", target="nf1", at_s=0.1)

    def test_exactly_one_onset_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(kind="hang", target="nf1")
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(kind="hang", target="nf1", at_s=0.1, rate_per_s=2.0)

    def test_permanent_kinds_cannot_self_heal(self):
        for kind in ("crash", "core_fail"):
            with pytest.raises(ValueError, match="cannot self-heal"):
                FaultSpec(kind=kind, target="0", at_s=0.1, duration_s=0.05)
        # Transient kinds accept a duration.
        FaultSpec(kind="hang", target="nf1", at_s=0.1, duration_s=0.05)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="hang", target="n", at_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="hang", target="n", rate_per_s=0.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="hang", target="n", rate_per_s=1.0, count=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="slowdown", target="n", at_s=0.1, factor=0.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultSpec field"):
            FaultSpec.from_dict({"kind": "hang", "target": "n",
                                 "at_s": 0.1, "blast_radius": 3})

    def test_target_coerced_to_str(self):
        assert FaultSpec(kind="core_fail", target=0, at_s=0.1).target == "0"


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=[FaultSpec(kind="crash", target="nf2", at_s=0.3),
                   FaultSpec(kind="slowdown", target="nf1",
                             rate_per_s=5.0, count=3, factor=2.0)],
            policy="restart-cold",
            detection_period_s=0.004,
            restart_delay_s=0.002,
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(detection_period_s=0.0)
        with pytest.raises(ValueError):
            FaultPlan(restart_delay_s=-1e-3)
        with pytest.raises(ValueError, match="unknown FaultPlan field"):
            FaultPlan.from_dict({"specs": [], "blast": True})

    def test_from_file_json(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan(specs=[FaultSpec(kind="hang", target="nf1",
                                          at_s=0.2)])
        path.write_text(plan.to_json())
        assert FaultPlan.from_file(str(path)) == plan

    def test_active_plan_lifecycle(self):
        assert current_plan() is None
        plan = FaultPlan()
        activate_plan(plan)
        try:
            assert current_plan() is plan
        finally:
            deactivate_plan()
        assert current_plan() is None

    def test_unknown_policy_name_rejected(self):
        with pytest.raises(ValueError, match="unknown recovery policy"):
            make_policy("reboot-the-universe")

    def test_policy_registry_names_match_instances(self):
        for name, factory in RECOVERY_POLICIES.items():
            assert make_policy(name).name == name
        custom = RestartPolicy(mode="cold", restart_delay_s=0.5)
        assert make_policy(custom) is custom


# ---------------------------------------------------------------------------
# Watchdog: symptom-only detection with explicit tick times
# ---------------------------------------------------------------------------

DETECT_NS = 2 * MSEC


@pytest.fixture
def wd_rig(loop, config):
    core = Core(loop, make_scheduler("BATCH"))
    from repro.core.nf import NFProcess

    nf = NFProcess("nf", FixedCost(260), config=config)
    core.add_task(nf)
    suspects = []
    wd = Watchdog(loop, DETECT_NS,
                  on_suspect=lambda n, t: suspects.append((n.name, t)))
    wd.register(nf)
    return nf, wd, suspects


class TestWatchdog:
    def test_stuck_nf_with_backlog_is_suspected(self, wd_rig):
        nf, wd, suspects = wd_rig
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        wd.tick(0)                    # first sighting: clock starts
        wd.tick(MSEC)                 # stale 1 ms: below threshold
        assert suspects == []
        wd.tick(2 * MSEC)             # stale 2 ms: flagged
        assert suspects == [("nf", 2 * MSEC)]
        assert wd.detections == 1

    def test_suspected_nf_not_reflagged(self, wd_rig):
        nf, wd, suspects = wd_rig
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        for t in (0, 2 * MSEC, 4 * MSEC, 6 * MSEC):
            wd.tick(t)
        assert len(suspects) == 1

    def test_idle_nf_never_suspected(self, wd_rig):
        nf, wd, suspects = wd_rig
        for t in range(0, 20 * MSEC, MSEC):
            wd.tick(t)
        assert suspects == []

    def test_drain_progress_resets_clock(self, wd_rig):
        nf, wd, suspects = wd_rig
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        wd.tick(0)
        nf.rx_ring.dequeue(3)         # the queue moved: alive
        wd.tick(MSEC)
        wd.tick(2 * MSEC)             # only 1 ms stale since progress
        assert suspects == []
        wd.tick(3 * MSEC)
        assert suspects != []

    def test_relinquish_excuses_stall(self, wd_rig):
        nf, wd, suspects = wd_rig
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        nf.relinquish = True          # backpressure parked it on purpose
        for t in range(0, 20 * MSEC, MSEC):
            wd.tick(t)
        assert suspects == []

    def test_full_tx_ring_excuses_stall(self, wd_rig, config):
        nf, wd, suspects = wd_rig
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        nf.tx_ring.enqueue(Flow("g"), config.ring_capacity, 0)
        for t in range(0, 20 * MSEC, MSEC):
            wd.tick(t)
        assert suspects == []

    def test_dead_ring_shedding_counts_as_demand(self, wd_rig):
        """A crashed NF's ring is empty (arrivals shed as nf_dead), but
        offered_arrivals keeps rising — that must still read as demand."""
        nf, wd, suspects = wd_rig
        nf.failed = True
        nf.rx_ring.dead = True
        wd.tick(0)
        for t in range(1, 5):
            nf.rx_ring.enqueue(Flow("f"), 5, t * MSEC)   # all shed
            wd.tick(t * MSEC)
        assert len(nf.rx_ring) == 0
        assert suspects != []

    def test_forget_clears_suspicion_and_clock(self, wd_rig):
        nf, wd, suspects = wd_rig
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        wd.tick(0)
        wd.tick(2 * MSEC)
        assert "nf" in wd.suspected
        wd.forget(nf)
        assert "nf" not in wd.suspected
        # The liveness clock restarted: it takes a fresh stale window.
        wd.tick(3 * MSEC)
        wd.tick(4 * MSEC)
        assert len(suspects) == 1
        wd.tick(5 * MSEC)
        assert len(suspects) == 2

    def test_remove_drops_from_roster(self, wd_rig):
        nf, wd, suspects = wd_rig
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        wd.remove(nf)
        for t in range(0, 10 * MSEC, MSEC):
            wd.tick(t)
        assert suspects == []

    def test_invalid_period_rejected(self, loop):
        with pytest.raises(ValueError):
            Watchdog(loop, 0)


# ---------------------------------------------------------------------------
# End-to-end: inject -> detect -> recover on a live Scenario
# ---------------------------------------------------------------------------

FAULT_AT_S = 0.04
DETECTION_MS = 2.0


def chaos_case(kind, policy, duration_s=0.12, detection_ms=DETECTION_MS,
               fault_at_s=FAULT_AT_S, target="nf2", fault_duration_s=None,
               factor=4.0, seed=0, features="NFVnice"):
    scenario = Scenario(scheduler="NORMAL", features=features, seed=seed)
    build_linear_chain(scenario, (120.0, 270.0, 550.0), core=0)
    scenario.add_flow("flow", "chain", line_rate_fraction=0.4)
    plan = FaultPlan(
        specs=[FaultSpec(kind=kind, target=target, at_s=fault_at_s,
                         duration_s=fault_duration_s, factor=factor)],
        policy=policy,
        detection_period_s=detection_ms / 1e3,
        restart_delay_s=1e-3,
    )
    scenario.attach_faults(plan)
    result = scenario.run(duration_s)
    return scenario, result


class TestCrashRecovery:
    def test_crash_detect_warm_restart(self):
        # Backpressure off ("CGroup"): with the full NFVnice feature set
        # the upstream NF is parked the moment the victim's ring backs
        # up, so nothing ever reaches the dead ring — shedding must be
        # observed without that shield in the way.
        scenario, result = chaos_case("crash", "restart-warm",
                                      features="CGroup")
        r = result.resilience
        assert r["injected"] == r["detected"] == r["recovered"] == 1
        assert r["restarts"] == 1
        assert result.nf("nf2").restarts == 1
        inc = r["incidents"][0]
        # Detection cannot beat the staleness threshold, and the 1 ms
        # monitor tick bounds how far past it the flag can land.
        lat = inc["detected_ns"] - inc["injected_ns"]
        assert DETECTION_MS * MSEC <= lat <= DETECTION_MS * MSEC + 2 * MSEC
        # Recovery = the plan's restart delay.
        assert inc["recovered_ns"] - inc["detected_ns"] == MSEC
        # Crash sheds arrivals at the dead ring while the outage runs.
        assert result.nf("nf2").rx_drops_by_reason.get("nf_dead", 0) > 0
        assert 0.9 < r["availability"] < 1.0

    def test_warm_requeues_what_cold_loses(self):
        _, warm = chaos_case("crash", "restart-warm")
        _, cold = chaos_case("crash", "restart-cold")
        assert warm.resilience["packets_requeued"] > 0
        assert cold.resilience["packets_requeued"] == 0
        # Cold clears the ring on restart, so it must lose strictly more.
        assert cold.resilience["packets_lost"] > \
            warm.resilience["packets_lost"]
        # The post-restart service resumes either way.
        assert cold.nf("nf2").restarts == warm.nf("nf2").restarts == 1

    def test_crash_loses_at_most_one_inflight_batch_when_warm(self):
        scenario, result = chaos_case("crash", "restart-warm")
        nf2 = scenario.manager.nf_by_name("nf2")
        assert 0 < result.resilience["packets_lost"] <= nf2.batch_size

    def test_backpressure_shield_discards_at_entry(self):
        scenario, shielded = chaos_case("crash", "restart-backpressure")
        # The shield throttles the chain at the system entry while the
        # restart is in flight: Figure 5's early discard, not ring loss.
        assert shielded.chain("chain").entry_discard_pps > 0
        # The shield lifts ring.dead so nothing is shed at the ring, and
        # whatever queued before the crash survives for the warm restart.
        assert shielded.nf("nf2").rx_drops_by_reason.get("nf_dead", 0) == 0
        assert shielded.resilience["recovered"] == 1

    def test_shield_lifted_after_recovery(self):
        scenario, result = chaos_case("crash", "restart-backpressure")
        assert result.resilience["recovered"] == 1
        assert not scenario.manager.chains["chain"].throttled

    def test_fail_chain_gives_up_permanently(self):
        scenario, result = chaos_case("crash", "fail-chain")
        r = result.resilience
        assert r["gave_up"] == 1
        assert r["recovered"] == 0
        assert r["restarts"] == 0
        assert scenario.manager.chains["chain"].throttled
        # The outage runs to the horizon: availability reflects one of
        # three NFs dead for the final two thirds of the run.
        assert r["availability"] < 0.85


class TestOtherFaultKinds:
    def test_hang_holds_ring_until_restart(self):
        scenario, result = chaos_case("hang", "restart-warm")
        r = result.resilience
        assert r["detected"] == r["recovered"] == 1
        # The wedged process kept its ring: everything queued during the
        # outage is requeued, nothing is lost to the fault itself.
        assert r["packets_requeued"] > 0
        assert r["packets_lost"] == 0

    def test_ring_stall_seals_and_restart_unseals(self):
        # Backpressure off, as in test_crash_detect_warm_restart: the
        # sealed-ring drops must not be masked by upstream throttling.
        scenario, result = chaos_case("ring_stall", "restart-warm",
                                      features="CGroup")
        nf2 = scenario.manager.nf_by_name("nf2")
        assert result.resilience["recovered"] == 1
        assert not nf2.rx_ring.sealed
        assert result.nf("nf2").rx_drops_by_reason.get("sealed", 0) > 0

    def test_slowdown_progresses_and_is_never_flagged(self):
        scenario, result = chaos_case("slowdown", "restart-warm",
                                      factor=6.0)
        r = result.resilience
        assert r["detected"] == 0
        assert r["false_alarms"] == 0
        assert r["availability"] == 1.0
        # Slow, not stuck: the NF keeps processing through the fault.
        assert result.nf("nf2").processed > 0

    def test_transient_hang_self_heals_before_detection(self):
        # 50 ms detection window, 5 ms hang: the watchdog never fires
        # and the injector's heal timer restores service.
        scenario, result = chaos_case("hang", "restart-warm",
                                      detection_ms=50.0,
                                      fault_duration_s=0.005)
        r = result.resilience
        assert r["healed"] == 1
        assert r["detected"] == 0
        assert r["restarts"] == 0
        inc = r["incidents"][0]
        assert inc["healed_ns"] - inc["injected_ns"] == 5 * MSEC
        # Service resumed: packets kept completing after the heal.
        assert result.chain("chain").completed > 0
        nf2 = scenario.manager.nf_by_name("nf2")
        assert not nf2.hung

    def test_permanent_slowdown_keeps_scaled_cost(self):
        scenario, _ = chaos_case("slowdown", "restart-warm", factor=6.0)
        # Nothing detects a slowdown and nothing heals a permanent one:
        # the scaled model stays in place to the horizon.
        nf2 = scenario.manager.nf_by_name("nf2")
        assert isinstance(nf2.cost_model, ScaledCost)

    def test_transient_slowdown_restores_cost_model(self):
        scenario, result = chaos_case("slowdown", "restart-warm",
                                      factor=6.0, fault_duration_s=0.02)
        assert result.resilience["healed"] == 1
        nf2 = scenario.manager.nf_by_name("nf2")
        assert not isinstance(nf2.cost_model, ScaledCost)

    def test_core_fail_takes_down_all_residents(self):
        scenario, result = chaos_case("core_fail", "restart-warm",
                                      target="0")
        r = result.resilience
        inc = r["incidents"][0]
        # All three NFs share core 0, so the incident is three wide.  The
        # two NFs with visible demand (queued backlog) are caught and
        # restarted; the entry NF sits behind the backpressure throttle
        # with an empty ring — indistinguishable from idle — and simply
        # resumes once the first restart repairs the core.
        assert inc["width"] == 3
        assert inc["recovered_ns"] is not None
        assert r["restarts"] == 2
        assert not scenario.manager.cores[0].failed
        # The chain serves again after the repair.
        assert result.chain("chain").completed > 0


class TestEmptyPlan:
    def test_no_faults_no_false_alarms(self):
        scenario = Scenario(scheduler="NORMAL", features="NFVnice", seed=0)
        build_linear_chain(scenario, (120.0, 270.0, 550.0), core=0)
        scenario.add_flow("flow", "chain", line_rate_fraction=0.4)
        scenario.attach_faults(FaultPlan())
        result = scenario.run(0.1)
        r = result.resilience
        assert r["injected"] == 0
        assert r["false_alarms"] == 0
        assert r["availability"] == 1.0


# ---------------------------------------------------------------------------
# Metrics helpers
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_latency_stats_empty(self):
        assert latency_stats([]) == {
            "count": 0, "mean_ns": 0.0, "min_ns": 0, "max_ns": 0}

    def test_latency_stats_values(self):
        s = latency_stats([MSEC, 3 * MSEC])
        assert s["count"] == 2
        assert s["mean_ns"] == pytest.approx(2 * MSEC)
        assert (s["min_ns"], s["max_ns"]) == (MSEC, 3 * MSEC)

    def test_availability_no_incidents(self):
        assert availability([], SEC, 3) == 1.0

    def test_throughput_dip_clean_recovery(self):
        # Steady 100 before the fault, a two-sample dip, then recovery.
        fault = 4 * MSEC + MSEC // 2
        samples = [(i * MSEC, 100.0) for i in range(5)]
        samples += [(5 * MSEC, 20.0), (6 * MSEC, 30.0)]
        samples += [(i * MSEC, 100.0) for i in range(7, 10)]
        dip = throughput_dip(samples, fault)
        assert dip["baseline"] == pytest.approx(100.0)
        assert dip["floor"] == pytest.approx(20.0)
        assert dip["depth_frac"] == pytest.approx(0.8)
        assert dip["recovered"]
        assert dip["width_ns"] == 7 * MSEC - fault

    def test_throughput_dip_never_recovers(self):
        fault = 4 * MSEC + MSEC // 2
        samples = [(i * MSEC, 100.0) for i in range(5)]
        samples += [(i * MSEC, 5.0) for i in range(5, 10)]
        dip = throughput_dip(samples, fault)
        assert not dip["recovered"]
        assert dip["width_ns"] == 9 * MSEC - fault

    def test_throughput_dip_no_dip(self):
        samples = [(i * MSEC, 50.0) for i in range(10)]
        dip = throughput_dip(samples, 5 * MSEC)
        assert dip["depth_frac"] == pytest.approx(0.0)
        assert dip["width_ns"] == 0


# ---------------------------------------------------------------------------
# Determinism: the subsystem is part of the reproducibility contract
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_same_plan_same_seed_identical_summary(self):
        from repro.analysis.export import result_to_dict
        from repro.runner.digest import digest_of

        digests = set()
        for _ in range(2):
            _, result = chaos_case("crash", "restart-warm")
            digests.add(digest_of(result_to_dict(result)))
        assert len(digests) == 1

    def test_stochastic_onsets_reproducible(self):
        def run_once():
            scenario = Scenario(scheduler="NORMAL", features="NFVnice",
                                seed=7)
            build_linear_chain(scenario, (120.0, 270.0), core=0)
            scenario.add_flow("flow", "chain", line_rate_fraction=0.3)
            plan = FaultPlan(
                specs=[FaultSpec(kind="hang", target="nf1",
                                 rate_per_s=20.0, count=2,
                                 duration_s=0.01)],
                detection_period_s=0.05,
            )
            scenario.attach_faults(plan)
            result = scenario.run(0.15)
            return [(i["kind"], i["injected_ns"], i["healed_ns"])
                    for i in result.resilience["incidents"]]

        first, second = run_once(), run_once()
        assert first == second
        assert len(first) >= 1

    def test_stochastic_onsets_require_rng(self, loop):
        from repro.platform.manager import NFManager

        mgr = NFManager(loop, scheduler="NORMAL")
        plan = FaultPlan(specs=[FaultSpec(kind="hang", target="nf1",
                                          rate_per_s=5.0)])
        mgr.attach_faults(plan, rng=None)
        injector = mgr.faults
        assert isinstance(injector, FaultInjector)
        with pytest.raises(RuntimeError, match="rng"):
            injector._schedule_onsets()

    def test_campaign_digest_invariant_across_worker_counts(self):
        """Satellite (d): identical FaultPlan + seed => identical campaign
        digest no matter how the cases are spread over workers."""
        from repro.runner.campaign import run_campaign

        serial = run_campaign(["chaos_recovery"], workers=1,
                              duration_s=0.03)
        twoway = run_campaign(["chaos_recovery"], workers=2,
                              duration_s=0.03)
        s = serial.experiments["chaos_recovery"]
        p = twoway.experiments["chaos_recovery"]
        assert s.ok and p.ok, s.failures + p.failures
        assert s.digest == p.digest
