"""Tests for the Rx/Tx/Wakeup manager threads and the NF Manager."""

import pytest

from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.manager import NFManager
from repro.platform.packet import Flow
from repro.sched.base import TaskState
from repro.sim.clock import MSEC, SEC, USEC
from repro.sim.engine import EventLoop


def build(loop, config, costs=(260, 260), scheduler="BATCH", chains=None):
    """A small manager with one chain over ``costs`` NFs on core 0."""
    mgr = NFManager(loop, scheduler=scheduler, config=config)
    nfs = [mgr.add_nf(NFProcess(f"nf{i}", FixedCost(c), config=config))
           for i, c in enumerate(costs, start=1)]
    chain = mgr.add_chain("chain", nfs)
    flow = Flow("f0")
    mgr.install_flow(flow, chain)
    return mgr, nfs, chain, flow


class TestManagerConstruction:
    def test_duplicate_chain_rejected(self, loop, config):
        mgr, nfs, chain, flow = build(loop, config)
        with pytest.raises(ValueError):
            mgr.add_chain("chain", nfs)

    def test_foreign_nf_rejected(self, loop, config):
        mgr, nfs, chain, flow = build(loop, config)
        stranger = NFProcess("stranger", FixedCost(100), config=config)
        with pytest.raises(ValueError):
            mgr.add_chain("other", [stranger])

    def test_add_nf_after_start_registers_live(self, loop, config):
        # Post-start registration (a restarted instance, a scaled-out
        # replica) announces the NF to the wakeup scan, the monitor, and
        # the least-loaded Tx thread.
        mgr, nfs, chain, flow = build(loop, config)
        mgr.start()
        late = mgr.add_nf(NFProcess("late", FixedCost(100), config=config))
        assert late in mgr.wakeup.nfs
        assert any(late in tx.nfs for tx in mgr.tx_threads)
        if mgr.monitor is not None:
            assert late in mgr.monitor.nfs
        # The late NF serves traffic end to end.
        solo = mgr.add_chain("late-chain", [late])
        f2 = Flow("f-late")
        mgr.install_flow(f2, solo)
        mgr.nic.rx_ring.enqueue(f2, 64, loop.now)
        loop.run_until(loop.now + 20 * MSEC)
        assert late.processed_packets == 64
        assert solo.completed == 64

    def test_nf_by_name(self, loop, config):
        mgr, nfs, chain, flow = build(loop, config)
        assert mgr.nf_by_name("nf1") is nfs[0]
        with pytest.raises(KeyError):
            mgr.nf_by_name("ghost")

    def test_features_wired_by_config(self, loop, config, default_config):
        mgr, *_ = build(loop, config)
        mgr.start()
        assert mgr.backpressure is not None
        assert mgr.monitor is not None
        loop2 = EventLoop()
        mgr2, *_ = build(loop2, default_config)
        mgr2.start()
        assert mgr2.backpressure is None
        assert mgr2.monitor is None

    def test_lazy_core_creation_with_distinct_schedulers(self, loop, config):
        mgr = NFManager(loop, scheduler="RR_1MS", config=config)
        c0, c1 = mgr.core(0), mgr.core(1)
        assert c0 is not c1
        assert c0.scheduler is not c1.scheduler


class TestDataPath:
    def test_packets_flow_through_chain(self, loop, config):
        mgr, nfs, chain, flow = build(loop, config)
        mgr.start()
        mgr.nic.receive(flow, 100, 0)
        loop.run_until(50 * MSEC)
        assert chain.completed == 100
        assert flow.stats.delivered == 100
        assert mgr.nic.tx_packets == 100

    def test_rx_thread_drops_unroutable(self, loop, config):
        mgr, nfs, chain, flow = build(loop, config)
        mgr.start()
        stranger = Flow("stranger")
        mgr.nic.receive(stranger, 50, 0)
        loop.run_until(MSEC)
        assert mgr.rx_thread.unroutable == 50

    def test_wakeup_on_packet_arrival(self, loop, config):
        mgr, nfs, chain, flow = build(loop, config)
        mgr.start()
        assert nfs[0].state is TaskState.BLOCKED
        mgr.nic.receive(flow, 10, 0)
        loop.run_until(config.rx_poll_ns + 10 * USEC)
        assert nfs[0].processed_packets > 0 or \
            nfs[0].state is not TaskState.BLOCKED

    def test_wasted_work_attributed_to_upstream(self, loop, default_config):
        """NFs on dedicated cores (the Table 5 regime): the fast upstream
        NF keeps processing packets the slow downstream one must drop, and
        every drop is charged to the upstream NF as wasted work."""
        mgr = NFManager(loop, scheduler="BATCH", config=default_config)
        nfs = [
            mgr.add_nf(NFProcess("nf1", FixedCost(100),
                                 config=default_config), core_id=0),
            mgr.add_nf(NFProcess("nf2", FixedCost(20000),
                                 config=default_config), core_id=1),
        ]
        chain = mgr.add_chain("chain", nfs)
        flow = Flow("f0")
        mgr.install_flow(flow, chain)
        mgr.start()
        from repro.sim.process import PeriodicProcess

        feeder = PeriodicProcess(
            loop, 100 * USEC, lambda: mgr.nic.receive(flow, 100, loop.now))
        feeder.start()
        loop.run_until(200 * MSEC)
        assert nfs[0].wasted_processed > 0
        assert chain.wasted_drops == nfs[0].wasted_processed

    def test_chain_completion_bytes(self, loop, config):
        mgr, nfs, chain, flow = build(loop, config)
        mgr.start()
        mgr.nic.receive(flow, 10, 0)
        loop.run_until(50 * MSEC)
        assert chain.completed_bytes == 10 * flow.pkt_size


class TestBackpressureIntegration:
    def test_entry_discard_for_throttled_chain(self, loop, config):
        """A slow downstream NF triggers entry discard of fresh arrivals."""
        mgr, nfs, chain, flow = build(loop, config, costs=(100, 50000))
        mgr.start()
        from repro.sim.process import PeriodicProcess

        feeder = PeriodicProcess(
            loop, 100 * USEC,
            lambda: mgr.nic.receive(flow, 200, loop.now))
        feeder.start()
        loop.run_until(300 * MSEC)
        assert chain.entry_discards > 0
        assert flow.stats.entry_discards == chain.entry_discards

    def test_default_platform_never_entry_discards(self, loop,
                                                   default_config):
        mgr, nfs, chain, flow = build(loop, default_config,
                                      costs=(100, 50000))
        mgr.start()
        from repro.sim.process import PeriodicProcess

        feeder = PeriodicProcess(
            loop, 100 * USEC,
            lambda: mgr.nic.receive(flow, 200, loop.now))
        feeder.start()
        loop.run_until(100 * MSEC)
        assert chain.entry_discards == 0

    def test_backpressure_reduces_wasted_work(self, loop, config,
                                              default_config):
        """The headline claim: same topology and load, wasted work drops
        by orders of magnitude with NFVnice."""
        def run(cfg):
            lp = EventLoop()
            mgr, nfs, chain, flow = build(lp, cfg, costs=(100, 260, 50000),
                                          scheduler="BATCH")
            mgr.start()
            from repro.sim.process import PeriodicProcess

            feeder = PeriodicProcess(
                lp, 100 * USEC, lambda: mgr.nic.receive(flow, 300, lp.now))
            feeder.start()
            lp.run_until(500 * MSEC)
            return chain

        wasted_default = run(default_config).wasted_drops
        wasted_nfvnice = run(config).wasted_drops
        assert wasted_default > 10 * max(wasted_nfvnice, 1)


class TestTxFullLocalBackpressure:
    def test_nf_blocks_on_full_tx_and_resumes(self, loop, default_config):
        """Local backpressure: Tx-ring-full blocks the NF; the Tx thread's
        drain releases it (§3.3)."""
        mgr, nfs, chain, flow = build(loop, default_config,
                                      costs=(100, 100))
        mgr.start()
        nf1 = nfs[0]
        # Pre-fill nf1's tx ring so it must block quickly.
        nf1.tx_ring.enqueue(flow, default_config.ring_capacity, 0)
        mgr.nic.receive(flow, 50, 0)
        loop.run_until(20 * MSEC)
        # Everything eventually delivered despite the stall.
        assert chain.completed == default_config.ring_capacity + 50


class TestIOUnblockWiring:
    def test_io_unblock_posts_wakeup(self, loop, config):
        from repro.core.io import DiskDevice, SyncIOContext

        mgr = NFManager(loop, scheduler="BATCH", config=config)
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=50 * USEC)
        io = SyncIOContext(loop, disk)
        logger = NFProcess("logger", FixedCost(260), config=config, io=io)
        mgr.add_nf(logger)
        chain = mgr.add_chain("chain", [logger])
        flow = Flow("f0")
        mgr.install_flow(flow, chain)
        mgr.start()
        assert io.on_unblock is not None
        mgr.nic.receive(flow, 5, 0)
        loop.run_until(10 * MSEC)
        assert chain.completed == 5


class TestMultipleTxThreads:
    def test_nfs_partitioned_across_tx_threads(self, loop, config):
        import dataclasses

        cfg = dataclasses.replace(config, num_tx_threads=2)
        mgr, nfs, chain, flow = build(loop, cfg, costs=(260, 260, 260))
        mgr.start()
        assert len(mgr.tx_threads) == 2
        covered = [nf.name for tx in mgr.tx_threads for nf in tx.nfs]
        assert sorted(covered) == sorted(nf.name for nf in nfs)

    def test_traffic_flows_with_multiple_tx_threads(self, loop, config):
        import dataclasses

        cfg = dataclasses.replace(config, num_tx_threads=3)
        mgr, nfs, chain, flow = build(loop, cfg, costs=(260, 260, 260))
        mgr.start()
        mgr.nic.receive(flow, 200, 0)
        loop.run_until(50 * MSEC)
        assert chain.completed == 200

    def test_back_compat_tx_thread_property(self, loop, config):
        mgr, *_ = build(loop, config)
        mgr.start()
        assert mgr.tx_thread is mgr.tx_threads[0]
