"""The Wakeup subsystem's eligibility matrix (§3.2's activation policy).

"The policy we provide for activating an NF considers the number of
packets pending in its queue, its priority relative to other NFs, and
knowledge of the queue lengths of downstream NFs in the same chain."
"""

import pytest

from repro.core.io import DiskDevice, SyncIOContext
from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.packet import Flow
from repro.platform.wakeup import WakeupSubsystem
from repro.sched import Core, make_scheduler
from repro.sched.base import TaskState
from repro.sim.clock import MSEC


@pytest.fixture
def rig(loop, config):
    core = Core(loop, make_scheduler("BATCH"))
    nf = NFProcess("nf", FixedCost(260), config=config)
    core.add_task(nf)
    wakeup = WakeupSubsystem(loop, [nf], backpressure=None, config=config)
    return core, nf, wakeup


class TestEligibility:
    def test_blocked_with_packets_is_eligible(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        assert wakeup.eligible(nf)

    def test_empty_queue_not_eligible(self, rig):
        core, nf, wakeup = rig
        assert not wakeup.eligible(nf)

    def test_running_not_eligible(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        core.wake(nf)
        assert nf.state is TaskState.RUNNING
        assert not wakeup.eligible(nf)

    def test_relinquish_flag_blocks_wake(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        nf.relinquish = True
        assert not wakeup.eligible(nf)
        assert not wakeup.notify(nf)

    def test_full_tx_ring_blocks_wake(self, rig, config):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        nf.tx_ring.enqueue(Flow("g"), config.ring_capacity, 0)
        assert not wakeup.eligible(nf)

    def test_io_blocked_nf_not_woken(self, loop, config):
        core = Core(loop, make_scheduler("BATCH"))
        disk = DiskDevice(loop, bandwidth_bps=1.0, op_latency_ns=10 ** 12)
        io = SyncIOContext(loop, disk)
        nf = NFProcess("logger", FixedCost(260), config=config, io=io)
        core.add_task(nf)
        wakeup = WakeupSubsystem(loop, [nf], None, config)
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        io.submit(1, 64, 0)  # device never completes
        assert io.blocked
        assert not wakeup.eligible(nf)

    def test_busy_loop_always_eligible(self, loop, config):
        core = Core(loop, make_scheduler("BATCH"))
        nf = NFProcess("spin", FixedCost(1), config=config, busy_loop=True)
        core.add_task(nf)
        wakeup = WakeupSubsystem(loop, [nf], None, config)
        assert wakeup.eligible(nf)

    def test_notify_counts_posts(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        assert wakeup.notify(nf)
        assert wakeup.wakeups_posted == 1
        assert not wakeup.notify(nf)  # already running
        assert wakeup.wakeups_posted == 1


class TestScan:
    def test_scan_wakes_all_eligible(self, loop, config):
        core = Core(loop, make_scheduler("BATCH"))
        nfs = [NFProcess(f"nf{i}", FixedCost(260), config=config)
               for i in range(3)]
        for nf in nfs:
            core.add_task(nf)
            nf.rx_ring.enqueue(Flow(f"f{nf.name}"), 3, 0)
        wakeup = WakeupSubsystem(loop, nfs, None, config)
        wakeup.scan()
        states = {nf.state for nf in nfs}
        assert TaskState.BLOCKED not in states

    def test_periodic_scan_catches_missed_wakes(self, loop, config):
        core = Core(loop, make_scheduler("BATCH"))
        nf = NFProcess("nf", FixedCost(260), config=config)
        core.add_task(nf)
        wakeup = WakeupSubsystem(loop, [nf], None, config)
        wakeup.start()
        # Packets appear without any notify() (e.g. direct test injection).
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        loop.run_until(2 * config.wakeup_scan_ns + MSEC)
        assert nf.processed_packets == 10
