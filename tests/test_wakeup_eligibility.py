"""The Wakeup subsystem's eligibility matrix (§3.2's activation policy).

"The policy we provide for activating an NF considers the number of
packets pending in its queue, its priority relative to other NFs, and
knowledge of the queue lengths of downstream NFs in the same chain."
"""

import pytest

from repro.core.io import DiskDevice, SyncIOContext
from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.packet import Flow
from repro.platform.wakeup import WakeupSubsystem
from repro.sched import Core, make_scheduler
from repro.sched.base import TaskState
from repro.sim.clock import MSEC


@pytest.fixture
def rig(loop, config):
    core = Core(loop, make_scheduler("BATCH"))
    nf = NFProcess("nf", FixedCost(260), config=config)
    core.add_task(nf)
    wakeup = WakeupSubsystem(loop, [nf], backpressure=None, config=config)
    return core, nf, wakeup


class TestEligibility:
    def test_blocked_with_packets_is_eligible(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        assert wakeup.eligible(nf)

    def test_empty_queue_not_eligible(self, rig):
        core, nf, wakeup = rig
        assert not wakeup.eligible(nf)

    def test_running_not_eligible(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        core.wake(nf)
        assert nf.state is TaskState.RUNNING
        assert not wakeup.eligible(nf)

    def test_relinquish_flag_blocks_wake(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        nf.relinquish = True
        assert not wakeup.eligible(nf)
        assert not wakeup.notify(nf)

    def test_full_tx_ring_blocks_wake(self, rig, config):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        nf.tx_ring.enqueue(Flow("g"), config.ring_capacity, 0)
        assert not wakeup.eligible(nf)

    def test_io_blocked_nf_not_woken(self, loop, config):
        core = Core(loop, make_scheduler("BATCH"))
        disk = DiskDevice(loop, bandwidth_bps=1.0, op_latency_ns=10 ** 12)
        io = SyncIOContext(loop, disk)
        nf = NFProcess("logger", FixedCost(260), config=config, io=io)
        core.add_task(nf)
        wakeup = WakeupSubsystem(loop, [nf], None, config)
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        io.submit(1, 64, 0)  # device never completes
        assert io.blocked
        assert not wakeup.eligible(nf)

    def test_busy_loop_always_eligible(self, loop, config):
        core = Core(loop, make_scheduler("BATCH"))
        nf = NFProcess("spin", FixedCost(1), config=config, busy_loop=True)
        core.add_task(nf)
        wakeup = WakeupSubsystem(loop, [nf], None, config)
        assert wakeup.eligible(nf)

    def test_notify_counts_posts(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        assert wakeup.notify(nf)
        assert wakeup.wakeups_posted == 1
        assert not wakeup.notify(nf)  # already running
        assert wakeup.wakeups_posted == 1


class TestFaultGates:
    """Broken NFs must never be woken: recovery owns them."""

    def test_failed_nf_not_eligible(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        nf.failed = True
        assert not wakeup.eligible(nf)
        assert not wakeup.notify(nf)

    def test_hung_nf_not_eligible(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        nf.hung = True
        assert not wakeup.eligible(nf)

    def test_sealed_ring_not_eligible(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        nf.rx_ring.sealed = True
        assert not wakeup.eligible(nf)

    def test_failed_core_not_eligible(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        core.fail()
        assert not wakeup.eligible(nf)
        core.repair()
        assert wakeup.eligible(nf)

    def test_restart_restores_eligibility(self, rig):
        core, nf, wakeup = rig
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        nf.failed = True
        nf.rx_ring.dead = True
        assert not wakeup.eligible(nf)
        nf.restart(now_ns=0)
        assert wakeup.eligible(nf)
        assert wakeup.notify(nf)


class TestDynamicMembership:
    def test_add_nf_joins_scan(self, loop, config):
        core = Core(loop, make_scheduler("BATCH"))
        wakeup = WakeupSubsystem(loop, [], None, config)
        nf = NFProcess("late", FixedCost(260), config=config)
        core.add_task(nf)
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        wakeup.scan()
        assert nf.state is TaskState.BLOCKED   # not registered yet
        wakeup.add_nf(nf)
        wakeup.add_nf(nf)                      # idempotent
        assert wakeup.nfs.count(nf) == 1
        wakeup.scan()
        assert nf.state is not TaskState.BLOCKED

    def test_remove_nf_leaves_scan(self, rig):
        core, nf, wakeup = rig
        wakeup.remove_nf(nf)
        wakeup.remove_nf(nf)                   # absent: no-op
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        wakeup.scan()
        assert nf.state is TaskState.BLOCKED


class _TogglingBackpressure:
    """Stands in for BackpressureController: each evaluate() call applies
    the next scripted relinquish value to the NF, the way a real scan's
    leading evaluate() can throttle or clear an NF just before the wake
    pass looks at it."""

    def __init__(self, nf, script):
        self.nf = nf
        self.script = list(script)

    def evaluate(self, now_ns):
        if self.script:
            self.nf.relinquish = self.script.pop(0)


class TestBackpressureMidScan:
    def test_throttle_raised_mid_scan_blocks_wake(self, loop, config):
        core = Core(loop, make_scheduler("BATCH"))
        nf = NFProcess("nf", FixedCost(260), config=config)
        core.add_task(nf)
        bp = _TogglingBackpressure(nf, [True, False])
        wakeup = WakeupSubsystem(loop, [nf], bp, config)
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        wakeup.scan()     # evaluate() throttles first: no wake this pass
        assert nf.state is TaskState.BLOCKED
        assert wakeup.wakeups_posted == 0
        wakeup.scan()     # evaluate() clears the flag: wake goes through
        assert nf.state is not TaskState.BLOCKED
        assert wakeup.wakeups_posted == 1

    def test_notify_fast_path_respects_fresh_throttle(self, loop, config):
        core = Core(loop, make_scheduler("BATCH"))
        nf = NFProcess("nf", FixedCost(260), config=config)
        core.add_task(nf)
        wakeup = WakeupSubsystem(loop, [nf], None, config)
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        # A data-path notify between scans sees the flag the moment the
        # controller sets it — no stale-eligibility window.
        nf.relinquish = True
        assert not wakeup.notify(nf)
        nf.relinquish = False
        assert wakeup.notify(nf)


class TestScan:
    def test_scan_wakes_all_eligible(self, loop, config):
        core = Core(loop, make_scheduler("BATCH"))
        nfs = [NFProcess(f"nf{i}", FixedCost(260), config=config)
               for i in range(3)]
        for nf in nfs:
            core.add_task(nf)
            nf.rx_ring.enqueue(Flow(f"f{nf.name}"), 3, 0)
        wakeup = WakeupSubsystem(loop, nfs, None, config)
        wakeup.scan()
        states = {nf.state for nf in nfs}
        assert TaskState.BLOCKED not in states

    def test_periodic_scan_catches_missed_wakes(self, loop, config):
        core = Core(loop, make_scheduler("BATCH"))
        nf = NFProcess("nf", FixedCost(260), config=config)
        core.add_task(nf)
        wakeup = WakeupSubsystem(loop, [nf], None, config)
        wakeup.start()
        # Packets appear without any notify() (e.g. direct test injection).
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        loop.run_until(2 * config.wakeup_scan_ns + MSEC)
        assert nf.processed_packets == 10
