"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_every_experiment_module_importable_with_main():
    import importlib

    for name, (module_path, _desc) in EXPERIMENTS.items():
        module = importlib.import_module(module_path)
        assert callable(getattr(module, "main")), name


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_campaign_duplicate_ids_rejected(capsys):
    assert main(["campaign", "tab05", "tab05"]) == 2
    assert "duplicate experiment id(s): tab05" in capsys.readouterr().err


def test_run_experiment(capsys):
    assert main(["run", "tab05", "--duration", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out


def test_topology_command(tmp_path, capsys):
    spec = {
        "nfs": [{"name": "fw", "cycles": 300, "core": 0}],
        "chains": [{"name": "c", "nfs": ["fw"]}],
        "flows": [{"id": "f", "chain": "c", "rate_pps": 1e6}],
    }
    path = tmp_path / "t.json"
    path.write_text(json.dumps(spec))
    assert main(["topology", str(path), "--duration", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "tput Mpps" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_with_observability_artifacts(tmp_path, capsys):
    """--trace/--metrics-out produce valid artifacts plus the hop table."""
    from repro.obs.session import current_session

    trace = tmp_path / "trace.json"
    prom = tmp_path / "metrics.prom"
    assert main(["run", "tab05", "--duration", "0.2",
                 "--trace", str(trace),
                 "--metrics-out", str(prom),
                 "--span-sample-rate", "16"]) == 0
    assert current_session() is None  # deactivated even on success
    out = capsys.readouterr().out
    assert "per-hop latency breakdown" in out
    assert "[obs] wrote" in out

    with open(trace) as fh:
        data = json.load(fh)
    events = data["traceEvents"]
    assert events
    # At least one scheduler slice per worker core and one counter sample
    # per NF ring track (tab05 pins one NF per core).
    slice_tids = {e["tid"] for e in events if e["ph"] == "X"}
    assert {0, 1, 2} <= slice_tids
    counter_names = {e["name"] for e in events if e["ph"] == "C"}
    assert {"ring nf1.rx", "ring nf2.rx", "ring nf3.rx"} <= counter_names

    text = prom.read_text()
    assert "# TYPE repro_chain_completed_packets gauge" in text
    assert "scenario=" in text


def test_run_rejects_nonpositive_span_sample_rate(capsys):
    assert main(["run", "tab05", "--span-sample-rate", "0"]) == 2
    assert "--span-sample-rate" in capsys.readouterr().err


def test_run_without_observability_attaches_nothing(capsys):
    from repro.obs.session import current_session

    assert main(["run", "tab05", "--duration", "0.1"]) == 0
    assert current_session() is None
    out = capsys.readouterr().out
    assert "[obs]" not in out
