"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_every_experiment_module_importable_with_main():
    import importlib

    for name, (module_path, _desc) in EXPERIMENTS.items():
        module = importlib.import_module(module_path)
        assert callable(getattr(module, "main")), name


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_experiment(capsys):
    assert main(["run", "tab05", "--duration", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out


def test_topology_command(tmp_path, capsys):
    spec = {
        "nfs": [{"name": "fw", "cycles": 300, "core": 0}],
        "chains": [{"name": "c", "nfs": ["fw"]}],
        "flows": [{"id": "f", "chain": "c", "rate_pps": 1e6}],
    }
    path = tmp_path / "t.json"
    path.write_text(json.dumps(spec))
    assert main(["topology", str(path), "--duration", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "tput Mpps" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
