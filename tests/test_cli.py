"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_every_experiment_module_importable_with_main():
    import importlib

    for name, (module_path, _desc) in EXPERIMENTS.items():
        module = importlib.import_module(module_path)
        assert callable(getattr(module, "main")), name


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_campaign_duplicate_ids_rejected(capsys):
    assert main(["campaign", "tab05", "tab05"]) == 2
    assert "duplicate experiment id(s): tab05" in capsys.readouterr().err


def test_run_experiment(capsys):
    assert main(["run", "tab05", "--duration", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out


def test_topology_command(tmp_path, capsys):
    spec = {
        "nfs": [{"name": "fw", "cycles": 300, "core": 0}],
        "chains": [{"name": "c", "nfs": ["fw"]}],
        "flows": [{"id": "f", "chain": "c", "rate_pps": 1e6}],
    }
    path = tmp_path / "t.json"
    path.write_text(json.dumps(spec))
    assert main(["topology", str(path), "--duration", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "tput Mpps" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_with_observability_artifacts(tmp_path, capsys):
    """--trace/--metrics-out produce valid artifacts plus the hop table."""
    from repro.obs.session import current_session

    trace = tmp_path / "trace.json"
    prom = tmp_path / "metrics.prom"
    assert main(["run", "tab05", "--duration", "0.2",
                 "--trace", str(trace),
                 "--metrics-out", str(prom),
                 "--span-sample-rate", "16"]) == 0
    assert current_session() is None  # deactivated even on success
    out = capsys.readouterr().out
    assert "per-hop latency breakdown" in out
    assert "[obs] wrote" in out

    with open(trace) as fh:
        data = json.load(fh)
    events = data["traceEvents"]
    assert events
    # At least one scheduler slice per worker core and one counter sample
    # per NF ring track (tab05 pins one NF per core).
    slice_tids = {e["tid"] for e in events if e["ph"] == "X"}
    assert {0, 1, 2} <= slice_tids
    counter_names = {e["name"] for e in events if e["ph"] == "C"}
    assert {"ring nf1.rx", "ring nf2.rx", "ring nf3.rx"} <= counter_names

    text = prom.read_text()
    assert "# TYPE repro_chain_completed_packets gauge" in text
    assert "scenario=" in text


def test_run_rejects_nonpositive_span_sample_rate(capsys):
    assert main(["run", "tab05", "--span-sample-rate", "0"]) == 2
    assert "--span-sample-rate" in capsys.readouterr().err


def test_run_without_observability_attaches_nothing(capsys):
    from repro.obs.session import current_session

    assert main(["run", "tab05", "--duration", "0.1"]) == 0
    assert current_session() is None
    out = capsys.readouterr().out
    assert "[obs]" not in out


def test_run_rejects_nonpositive_stream_interval(capsys):
    assert main(["run", "tab05", "--stream-interval-ms", "0"]) == 2
    assert "--stream-interval-ms" in capsys.readouterr().err
    assert main(["run", "tab05", "--stream-interval-ms", "-5"]) == 2
    assert "--stream-interval-ms" in capsys.readouterr().err


def test_run_rejects_empty_stream_out(capsys):
    assert main(["run", "tab05", "--stream-out", "  "]) == 2
    assert "--stream-out" in capsys.readouterr().err


def test_run_streams_snapshots(tmp_path, capsys):
    """--stream-out writes JSONL snapshots with latency + causality."""
    path = tmp_path / "snaps.jsonl"
    assert main(["run", "tab05", "--duration", "0.2",
                 "--stream-out", str(path),
                 "--stream-interval-ms", "50"]) == 0
    out = capsys.readouterr().out
    assert "[obs] streamed" in out
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert len(lines) >= 4  # 3 periodic at 50 ms + final
    for snap in lines:
        assert snap["scenario"]
        assert "latency" in snap and "causality" in snap
    assert lines[-1]["latency"]["flows"]


def test_obs_diff_identical_files_pass(tmp_path, capsys):
    entry = {"case": {"latency": {"flows": {"f": {
        "count": 10, "p50_us": 5.0, "p95_us": 20.0,
        "p99_us": 40.0, "p99_9_us": 80.0}}}}}
    a = tmp_path / "a.json"
    a.write_text(json.dumps(entry))
    assert main(["obs", "diff", str(a), str(a)]) == 0
    assert "0 percentile regression(s)" in capsys.readouterr().out


def test_obs_diff_flags_regression_with_exit_1(tmp_path, capsys):
    def entry(p99):
        return {"case": {"latency": {"flows": {"f": {
            "count": 10, "p50_us": 5.0, "p95_us": 20.0,
            "p99_us": p99, "p99_9_us": 2 * p99}}}}}

    a, b = tmp_path / "a.json", tmp_path / "b.json"
    a.write_text(json.dumps(entry(40.0)))
    b.write_text(json.dumps(entry(60.0)))
    assert main(["obs", "diff", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    # A loose enough threshold accepts the same pair.
    assert main(["obs", "diff", str(a), str(b),
                 "--max-regression", "0.6"]) == 0


def test_obs_diff_bad_inputs(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text("{}")
    assert main(["obs", "diff", str(tmp_path / "nope.json"),
                 str(good)]) == 2
    assert "cannot load telemetry" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["obs", "diff", str(good), str(bad)]) == 2
    assert "cannot load telemetry" in capsys.readouterr().err
    assert main(["obs", "diff", str(good), str(good),
                 "--max-regression", "-1"]) == 2
    assert "--max-regression" in capsys.readouterr().err
