"""Tests for the Core dispatch engine using synthetic tasks."""

import math

import pytest

from repro.sched.base import CoreTask, ExecOutcome, ExecResult, TaskState
from repro.sched.cfs import CFSScheduler
from repro.sched.core import Core
from repro.sched.rr import RRScheduler
from repro.sim.clock import MSEC, SEC, USEC


class WorkTask(CoreTask):
    """A task with a finite pool of work; blocks when it runs out."""

    def __init__(self, name, work_ns, weight=1024):
        super().__init__(name, weight)
        self.work_ns = float(work_ns)
        self.done_ns = 0.0

    def estimate_run_ns(self, now_ns):
        return self.work_ns - self.done_ns

    def execute(self, now_ns, granted_ns):
        take = min(granted_ns, self.work_ns - self.done_ns)
        self.done_ns += take
        if self.work_ns - self.done_ns > 1e-9:
            return ExecResult(take, ExecOutcome.USED_ALL)
        return ExecResult(take, ExecOutcome.RAN_OUT)


class GreedyTask(CoreTask):
    """Never yields voluntarily (a misbehaving NF)."""

    def estimate_run_ns(self, now_ns):
        return math.inf

    def execute(self, now_ns, granted_ns):
        return ExecResult(granted_ns, ExecOutcome.USED_ALL)


def make_core(loop, sched=None, **kw):
    return Core(loop, sched or CFSScheduler(), ctx_switch_ns=0.0, **kw)


class TestBasicDispatch:
    def test_single_task_runs_to_completion(self, loop):
        core = make_core(loop)
        t = WorkTask("t", 5 * MSEC)
        core.add_task(t)
        core.wake(t)
        loop.run_until(SEC)
        assert t.done_ns == pytest.approx(5 * MSEC)
        assert t.state is TaskState.BLOCKED
        assert t.stats.voluntary_switches == 1

    def test_task_cannot_join_two_cores(self, loop):
        c1, c2 = make_core(loop), make_core(loop)
        t = WorkTask("t", MSEC)
        c1.add_task(t)
        with pytest.raises(ValueError):
            c2.add_task(t)

    def test_wake_blocked_only(self, loop):
        core = make_core(loop)
        t = WorkTask("t", 10 * MSEC)
        core.add_task(t)
        assert core.wake(t)
        assert not core.wake(t)  # already running/ready

    def test_two_tasks_both_complete(self, loop):
        core = make_core(loop)
        a = WorkTask("a", 10 * MSEC)
        b = WorkTask("b", 10 * MSEC)
        for t in (a, b):
            core.add_task(t)
            core.wake(t)
        loop.run_until(SEC)
        assert a.done_ns == pytest.approx(10 * MSEC)
        assert b.done_ns == pytest.approx(10 * MSEC)

    def test_work_conservation(self, loop):
        """Busy + idle + overhead accounts for the whole horizon."""
        core = Core(loop, CFSScheduler(), ctx_switch_ns=1000.0)
        tasks = [WorkTask(f"t{i}", 20 * MSEC) for i in range(3)]
        for t in tasks:
            core.add_task(t)
            core.wake(t)
        loop.run_until(200 * MSEC)
        core.finalize()
        total = (core.stats.busy_ns + core.stats.idle_ns
                 + core.stats.overhead_ns)
        assert total == pytest.approx(200 * MSEC, rel=1e-6)

    def test_spurious_wake_blocks_again(self, loop):
        core = make_core(loop)
        t = WorkTask("t", 0.0)  # no work at all
        core.add_task(t)
        core.wake(t)
        loop.run_until(MSEC)
        assert t.state is TaskState.BLOCKED
        assert t.stats.runtime_ns == 0.0


class TestFairness:
    def test_equal_weights_equal_runtime(self, loop):
        core = make_core(loop)
        a, b = GreedyTask("a"), GreedyTask("b")
        for t in (a, b):
            core.add_task(t)
            core.wake(t)
        loop.run_until(SEC)
        assert a.stats.runtime_ns == pytest.approx(
            b.stats.runtime_ns, rel=0.02)

    def test_cgroup_weights_split_cpu(self, loop):
        """vruntime scaling: a 3x-weight task gets ~3x the CPU — the exact
        mechanism NFVnice's Monitor exploits."""
        core = make_core(loop)
        light = GreedyTask("light", weight=512)
        heavy = GreedyTask("heavy", weight=1536)
        for t in (light, heavy):
            core.add_task(t)
            core.wake(t)
        loop.run_until(SEC)
        ratio = heavy.stats.runtime_ns / light.stats.runtime_ns
        assert ratio == pytest.approx(3.0, rel=0.1)

    def test_greedy_task_cannot_starve_others(self, loop):
        """The §2.1 malicious-NF property: a task that never yields still
        cannot take more than its fair share under CFS."""
        core = make_core(loop)
        greedy = GreedyTask("greedy")
        worker = GreedyTask("worker")
        for t in (greedy, worker):
            core.add_task(t)
            core.wake(t)
        loop.run_until(SEC)
        assert worker.stats.runtime_ns > 0.45 * SEC

    def test_rr_ignores_weights(self, loop):
        core = make_core(loop, RRScheduler(quantum_ns=MSEC))
        light = GreedyTask("light", weight=1)
        heavy = GreedyTask("heavy", weight=10000)
        for t in (light, heavy):
            core.add_task(t)
            core.wake(t)
        loop.run_until(SEC)
        assert light.stats.runtime_ns == pytest.approx(
            heavy.stats.runtime_ns, rel=0.02)


class TestContextSwitchAccounting:
    def test_voluntary_switch_on_block(self, loop):
        core = make_core(loop)
        a = WorkTask("a", MSEC)
        core.add_task(a)
        core.wake(a)
        loop.run_until(10 * MSEC)
        assert a.stats.voluntary_switches == 1
        assert a.stats.involuntary_switches == 0

    def test_involuntary_switch_under_contention(self, loop):
        core = make_core(loop)
        a, b = GreedyTask("a"), GreedyTask("b")
        for t in (a, b):
            core.add_task(t)
            core.wake(t)
        loop.run_until(100 * MSEC)
        assert a.stats.involuntary_switches > 0
        assert a.stats.voluntary_switches == 0

    def test_lone_task_no_involuntary_switches(self, loop):
        """With nobody else runnable the kernel re-picks the same task;
        no context switch is recorded."""
        core = make_core(loop)
        t = GreedyTask("t")
        core.add_task(t)
        core.wake(t)
        loop.run_until(SEC)
        assert t.stats.involuntary_switches == 0

    def test_switch_overhead_charged(self, loop):
        core = Core(loop, CFSScheduler(), ctx_switch_ns=2000.0)
        a, b = GreedyTask("a"), GreedyTask("b")
        for t in (a, b):
            core.add_task(t)
            core.wake(t)
        loop.run_until(100 * MSEC)
        assert core.stats.overhead_ns > 0
        assert core.stats.overhead_ns == pytest.approx(
            2000.0 * (core.stats.dispatches - 1), rel=0.2)


class TestSegmentCap:
    def test_segments_bounded(self, loop):
        core = make_core(loop, max_segment_ns=50 * USEC)
        t = GreedyTask("t")
        core.add_task(t)
        core.wake(t)
        loop.run_until(MSEC)
        # 1ms of run in <=50us segments: at least 20 events fired.
        assert t.stats.runtime_ns == pytest.approx(MSEC, rel=0.01)


class TestInterrupt:
    def test_interrupt_voluntary_blocks_task(self, loop):
        core = make_core(loop)
        t = GreedyTask("t")
        core.add_task(t)
        core.wake(t)
        loop.run_until(MSEC)
        core.interrupt_current(voluntary=True)
        assert t.state is TaskState.BLOCKED
        assert t.stats.voluntary_switches == 1
        assert t.stats.runtime_ns == pytest.approx(MSEC, rel=0.05)

    def test_interrupt_involuntary_requeues(self, loop):
        core = make_core(loop)
        t = GreedyTask("t")
        core.add_task(t)
        core.wake(t)
        loop.run_until(MSEC)
        core.interrupt_current(voluntary=False)
        # Requeued and immediately re-dispatched (only runnable task).
        assert t.state is TaskState.RUNNING
        assert t.stats.involuntary_switches == 1

    def test_interrupt_idle_core_noop(self, loop):
        core = make_core(loop)
        core.interrupt_current(voluntary=True)  # must not raise

    def test_block_ready(self, loop):
        core = make_core(loop)
        a, b = GreedyTask("a"), GreedyTask("b")
        for t in (a, b):
            core.add_task(t)
            core.wake(t)
        # One is running, the other READY.
        ready = b if core.current is a else a
        assert core.block_ready(ready)
        assert ready.state is TaskState.BLOCKED
        assert not core.block_ready(ready)


class TestSchedulingDelay:
    def test_delay_measured_from_wake(self, loop):
        # BATCH disables wakeup preemption, so the waiter actually waits.
        from repro.sched.cfs import CFSBatchScheduler

        core = make_core(loop, CFSBatchScheduler())
        runner = GreedyTask("runner")
        core.add_task(runner)
        core.wake(runner)
        waiter = WorkTask("waiter", MSEC)
        core.add_task(waiter)
        loop.run_until(10 * MSEC)
        core.wake(waiter)
        loop.run_until(50 * MSEC)
        assert waiter.stats.sched_delay_count >= 1
        assert waiter.stats.avg_sched_delay_ns > 0
