"""Unit tests for the CFS scheduler models."""

import pytest

from repro.sched.base import CoreTask
from repro.sched.cfs import CFSBatchScheduler, CFSScheduler, NICE_0_WEIGHT
from repro.sim.clock import MSEC


def make_task(name="t", weight=1024):
    return CoreTask(name, weight)


class TestRunqueue:
    def test_pick_from_empty(self):
        sched = CFSScheduler()
        assert sched.pick_next(0) is None

    def test_picks_min_vruntime(self):
        sched = CFSScheduler()
        a, b = make_task("a"), make_task("b")
        a.vruntime = 100.0
        b.vruntime = 50.0
        sched.enqueue(a, 0, wakeup=False)
        sched.enqueue(b, 0, wakeup=False)
        assert sched.pick_next(0) is b
        assert sched.pick_next(0) is a

    def test_double_enqueue_rejected(self):
        sched = CFSScheduler()
        a = make_task()
        sched.enqueue(a, 0, wakeup=False)
        with pytest.raises(RuntimeError):
            sched.enqueue(a, 0, wakeup=False)

    def test_dequeue_removes(self):
        sched = CFSScheduler()
        a, b = make_task("a"), make_task("b")
        sched.enqueue(a, 0, wakeup=False)
        sched.enqueue(b, 0, wakeup=False)
        sched.dequeue(a, 0)
        assert sched.nr_ready == 1
        assert sched.pick_next(0) is b

    def test_nr_ready(self):
        sched = CFSScheduler()
        for i in range(5):
            sched.enqueue(make_task(f"t{i}"), 0, wakeup=False)
        assert sched.nr_ready == 5


class TestVruntime:
    def test_charge_scales_by_weight(self):
        sched = CFSScheduler()
        normal = make_task("n", weight=NICE_0_WEIGHT)
        heavy = make_task("h", weight=2 * NICE_0_WEIGHT)
        sched.charge(normal, 1000.0)
        sched.charge(heavy, 1000.0)
        assert normal.vruntime == pytest.approx(1000.0)
        assert heavy.vruntime == pytest.approx(500.0)

    def test_heavier_task_runs_more(self):
        """Alternating picks with equal charges: the double-weight task is
        selected about twice as often."""
        sched = CFSScheduler()
        a = make_task("a", weight=1024)
        b = make_task("b", weight=2048)
        sched.enqueue(a, 0, wakeup=False)
        sched.enqueue(b, 0, wakeup=False)
        runs = {"a": 0, "b": 0}
        for _ in range(300):
            task = sched.pick_next(0)
            runs[task.name] += 1
            sched.charge(task, 1000.0)
            sched.enqueue(task, 0, wakeup=False)
        assert runs["b"] / runs["a"] == pytest.approx(2.0, rel=0.05)

    def test_min_vruntime_monotone(self):
        sched = CFSScheduler()
        a = make_task("a")
        sched.enqueue(a, 0, wakeup=False)
        values = []
        for _ in range(10):
            task = sched.pick_next(0)
            sched.charge(task, 500.0)
            values.append(sched.min_vruntime)
            sched.enqueue(task, 0, wakeup=False)
        assert values == sorted(values)

    def test_sleeper_fairness_floor(self):
        """A task waking after a long sleep is placed at most half a
        latency period behind min_vruntime, not at its stale vruntime."""
        sched = CFSScheduler()
        runner = make_task("runner")
        sched.charge(runner, 100 * MSEC)  # min_vruntime advances
        sleeper = make_task("sleeper")
        sleeper.vruntime = 0.0
        sched.enqueue(sleeper, 0, wakeup=True)
        floor = sched.min_vruntime - sched.sched_latency_ns / 2.0
        assert sleeper.vruntime == pytest.approx(floor)

    def test_wakeup_does_not_penalise_ahead_task(self):
        sched = CFSScheduler()
        runner = make_task("runner")
        sched.charge(runner, 1 * MSEC)
        ahead = make_task("ahead")
        ahead.vruntime = sched.min_vruntime + 5.0
        sched.enqueue(ahead, 0, wakeup=True)
        assert ahead.vruntime == pytest.approx(sched.min_vruntime + 5.0)


class TestTimeSlice:
    def test_slice_splits_period_by_weight(self):
        sched = CFSScheduler()
        a = make_task("a", weight=1024)
        b = make_task("b", weight=1024)
        sched.enqueue(b, 0, wakeup=False)
        # Two runnable tasks, equal weight: half the latency period each.
        assert sched.time_slice(a, 0) == pytest.approx(
            sched.sched_latency_ns / 2
        )

    def test_slice_has_min_granularity_floor(self):
        sched = CFSScheduler()
        tasks = [make_task(f"t{i}") for i in range(50)]
        for t in tasks[1:]:
            sched.enqueue(t, 0, wakeup=False)
        assert sched.time_slice(tasks[0], 0) >= sched.min_granularity_ns

    def test_heavier_task_longer_slice(self):
        sched = CFSScheduler()
        light = make_task("l", weight=512)
        heavy = make_task("h", weight=2048)
        sched.enqueue(light, 0, wakeup=False)
        assert sched.time_slice(heavy, 0) > sched.time_slice(light, 0)


class TestWakeupPreemption:
    def test_normal_preempts_laggard(self):
        sched = CFSScheduler()
        current = make_task("cur")
        current.vruntime = 10 * MSEC
        woken = make_task("wok")
        woken.vruntime = 0.0
        assert sched.preempts_on_wake(woken, current, 0.0)

    def test_no_preempt_within_granularity(self):
        sched = CFSScheduler()
        current = make_task("cur")
        woken = make_task("wok")
        woken.vruntime = current.vruntime - sched.wakeup_granularity_ns / 2
        assert not sched.preempts_on_wake(woken, current, 0.0)

    def test_projection_includes_current_run(self):
        sched = CFSScheduler()
        current = make_task("cur")
        woken = make_task("wok")
        woken.vruntime = current.vruntime
        # Without elapsed time, no preempt; with 10ms of un-charged run,
        # the projection crosses the granularity.
        assert not sched.preempts_on_wake(woken, current, 0.0)
        assert sched.preempts_on_wake(woken, current, 10 * MSEC)

    def test_batch_never_preempts_on_wake(self):
        sched = CFSBatchScheduler()
        current = make_task("cur")
        current.vruntime = 100 * MSEC
        woken = make_task("wok")
        woken.vruntime = 0.0
        assert not sched.preempts_on_wake(woken, current, 0.0)


def test_batch_has_coarser_granularity():
    assert CFSBatchScheduler().min_granularity_ns > \
        CFSScheduler().min_granularity_ns


def test_scheduler_names():
    assert CFSScheduler().name == "NORMAL"
    assert CFSBatchScheduler().name == "BATCH"
