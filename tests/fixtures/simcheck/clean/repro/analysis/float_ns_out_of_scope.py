"""Clean fixture: SIM301 only covers sim/sched/platform, not analysis."""


def to_millis(latency_ns):
    scaled_ns = latency_ns * 0.5         # out of SIM301 scope: fine
    return float(scaled_ns)              # out of SIM301 scope: fine
