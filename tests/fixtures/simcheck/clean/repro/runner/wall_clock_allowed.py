"""Clean fixture: wall-clock reads are legal under repro/runner/."""

import time


def worker_elapsed() -> float:
    start = time.perf_counter()          # allowlisted path: no SIM101
    return time.time() - start           # allowlisted path: no SIM101
