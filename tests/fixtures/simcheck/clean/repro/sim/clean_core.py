"""Clean fixture: near-misses for every rule; simcheck must stay silent."""

from typing import Optional


class Clock:
    def __init__(self, factory):
        self.busy_ns = 0                         # int literal: fine
        self.runtime_ns: float = 0.0             # explicit float opt-in: fine
        self.rng = factory.stream("clock")       # factory stream, not a ctor

    def advance(self, span_ns: int) -> None:
        self.busy_ns += span_ns                  # int arithmetic: fine

    def utilisation(self, total_ns: int) -> float:
        return self.busy_ns / total_ns           # Div is exempt (ratio)

    def seconds(self, total_ns: int) -> float:
        return total_ns / 1e9                    # Div by float: unit convert


def ordered(names):
    for name in sorted({"nf0", "nf1"}):          # sorted() wraps the set
        yield name
    return sorted(names, key=lambda n: n.lower())  # stable key, no id()


def wait(timeout_ns: float = 1.5) -> float:      # float default, annotated
    return timeout_ns


def pick(deadline_ns: Optional[int] = None) -> Optional[int]:
    return deadline_ns
