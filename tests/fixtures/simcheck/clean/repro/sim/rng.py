"""Clean fixture: RNG construction is legal inside repro/sim/rng.py."""

import numpy as np


def make_stream(seed: int):
    return np.random.default_rng(seed)   # sanctioned module: no SIM401
