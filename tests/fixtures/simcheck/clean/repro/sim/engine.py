"""SIM501 clean look-alike: heapq inside repro/sim/engine.py is the
one allowed location — the event-loop engines own the priority queues.
"""

import heapq


def pop_min(heap):
    return heapq.heappop(heap)
