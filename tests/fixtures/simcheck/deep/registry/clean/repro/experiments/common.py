"""Fixture: ScenarioResult with every field declared in the registry."""

from dataclasses import dataclass
from typing import Dict


@dataclass
class ScenarioResult:
    scheduler: str
    duration_s: float
    loop_stats: Dict[str, int]
