"""Fixture: ScenarioResult grows a field missing from the registry."""

from dataclasses import dataclass
from typing import Dict


@dataclass
class ScenarioResult:
    scheduler: str
    duration_s: float
    loop_stats: Dict[str, int]
    debug_counters: Dict[str, int]
