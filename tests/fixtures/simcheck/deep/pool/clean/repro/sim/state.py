"""Fixture: per-instance state, no cross-run module mutation."""


class ChainState:
    def __init__(self) -> None:
        self.cache = {}
        self.totals = []
        self.mode = "idle"

    def record(self, name, value):  # noqa: ANN001 - fixture
        self.cache[name] = value
        self.totals.append(value)

    def set_mode(self, mode):  # noqa: ANN001 - fixture
        self.mode = mode
