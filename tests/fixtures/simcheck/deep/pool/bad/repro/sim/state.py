"""Fixture: module/class state that breaks --workers invariance."""

_CACHE = {}
_TOTALS = []
_MODE = "idle"


class ChainState:
    registry = {}

    def __init__(self) -> None:
        self.items = []


def record(name, value):  # noqa: ANN001 - fixture
    _CACHE[name] = value
    _TOTALS.append(value)


def set_mode(mode):  # noqa: ANN001 - fixture
    global _MODE
    _MODE = mode
