"""Fixture: harness helper taking simulated time as an input."""


def stamp(now_ns: int) -> int:
    return now_ns // 1_000_000
