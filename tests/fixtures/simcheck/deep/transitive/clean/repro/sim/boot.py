"""Fixture: simulation code passing simulated time into the helper."""

from repro.runner.timeutil import stamp


def boot_clock(now_ns: int) -> int:
    return stamp(now_ns)
