"""Fixture: harness helper reading the wall clock.

File-local SIM101 is silent here (``repro/runner/`` is allowlisted);
the lifted SIM611 must flag it once simulation code can reach it.
"""

import time


def stamp() -> float:
    return time.time()
