"""Fixture: simulation code calling into an allowlisted helper."""

from repro.runner.timeutil import stamp


def boot_clock() -> float:
    return stamp()
