"""Fixture: digest assembly over a telemetry-clean payload builder."""

from repro.runner.collect import collect
from repro.runner.digest import digest_of


def report_digest(result: object) -> str:
    return digest_of(collect(result))
