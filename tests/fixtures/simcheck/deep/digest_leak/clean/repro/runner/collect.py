"""Fixture: payload builder keeping telemetry out of the digest.

The invisible read only happens under the registered telemetry gate, so
the value rides beside the digest payload, never inside it.
"""


def collect(result, include_telemetry=False):  # noqa: ANN001 - fixture
    payload = {"throughput": result.total_throughput_pps}
    if include_telemetry:
        payload["telemetry"] = {"loop_stats": result.loop_stats}
    return payload
