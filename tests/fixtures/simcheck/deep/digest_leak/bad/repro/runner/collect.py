"""Fixture: payload builder leaking telemetry into the digest.

``loop_stats`` is digest-invisible, but here it lands under a
non-telemetry key in the payload that ``report.report_digest`` hashes —
the cross-module leak SIM601 must catch with a call-chain witness.
"""


def collect(result):  # noqa: ANN001 - fixture
    payload = {"throughput": result.total_throughput_pps}
    payload["debug"] = result.loop_stats
    return payload
