"""Fixture: the allowlisted RNG module grows a rogue constructor.

File-local SIM401 exempts everything in ``repro/sim/rng.py``; the
lifted SIM612 must flag constructions outside the sanctioned factory
surface.
"""

import numpy as np


class RngFactory:
    def stream(self, name: str):  # noqa: ANN201 - fixture
        return np.random.default_rng(hash(name) % 2**32)


def rogue_generator():  # noqa: ANN201 - fixture
    return np.random.default_rng()
