"""Fixture: simulation code reaching the rogue constructor."""

from repro.sim.rng import rogue_generator


def setup():  # noqa: ANN201 - fixture
    return rogue_generator()
