"""Fixture: simulation code using the sanctioned factory."""

from repro.sim.rng import RngFactory


def setup():  # noqa: ANN201 - fixture
    return RngFactory().stream("arrivals")
