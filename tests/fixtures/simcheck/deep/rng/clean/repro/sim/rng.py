"""Fixture: RNG construction only on the sanctioned factory surface."""

import numpy as np


class RngFactory:
    def stream(self, name: str):  # noqa: ANN201 - fixture
        return np.random.default_rng(hash(name) % 2**32)


def fallback_generator():  # noqa: ANN201 - fixture
    return np.random.default_rng(0)
