"""SIM102 fixture: draws from the process-global RNG state."""

import random

import numpy as np
from random import randint


def jitter() -> float:
    return random.random()               # SIM102


def pick(items):
    return random.choice(items)          # SIM102


def roll() -> int:
    return randint(1, 6)                 # SIM102 (from-import alias)


def noise():
    return np.random.rand(4)             # SIM102
