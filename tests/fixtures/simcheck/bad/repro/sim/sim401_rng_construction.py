"""SIM401 fixture: RNG constructed outside repro/sim/rng.py."""

import random

import numpy as np
from numpy.random import default_rng


def local_stream():
    return np.random.default_rng(7)      # SIM401


def legacy_stream():
    return random.Random(3)              # SIM401


def aliased_stream():
    return default_rng(11)               # SIM401 (from-import alias)
