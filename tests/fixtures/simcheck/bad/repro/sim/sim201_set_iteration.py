"""SIM201 fixture: iteration order taken from unordered sets."""


def walk(a, b):
    for name in {"nf0", "nf1", "nf2"}:               # SIM201 (set literal)
        print(name)
    for item in set(a):                              # SIM201 (set() call)
        print(item)
    for item in a.intersection(b):                   # SIM201 (set method)
        print(item)
    return [x for x in {n for n in a}]               # SIM201 (set comp)
