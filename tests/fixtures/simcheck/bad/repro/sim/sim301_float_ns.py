"""SIM301 fixture: implicit float contamination of *_ns state."""


class Clock:
    def __init__(self):
        self.busy_ns = 0.0                           # SIM301 (float literal)
        self.idle_ns: int = 0.0                      # SIM301 (int ann, float)

    def advance(self, span_ns: int) -> None:
        self.busy_ns += 0.5                          # SIM301 (augassign)

    def slack(self, deadline_ns: int) -> int:
        return deadline_ns - 1.5                     # SIM301 (binop)

    def late(self, delay_ns: int) -> bool:
        return delay_ns > 0.0                        # SIM301 (compare)

    def as_float(self, runtime_ns: int) -> float:
        return float(runtime_ns)                     # SIM301 (float() cast)


def wait(timeout_ns=1.5):                            # SIM301 (float default)
    return timeout_ns
