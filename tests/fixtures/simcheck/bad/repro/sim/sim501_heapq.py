"""SIM501 fixture: direct heapq use outside repro/sim/engine.py.

Five findings: the two import statements and the three call sites.
"""

import heapq                              # finding 1
from heapq import heappush as push       # finding 2


def drain_in_order(items):
    heap = list(items)
    heapq.heapify(heap)                   # finding 3
    out = []
    while heap:
        out.append(heapq.heappop(heap))   # finding 4
    return out


def enqueue(heap, item):
    push(heap, item)                      # finding 5 (resolved alias)
