"""SIM103 fixture: memory addresses used as ordering keys."""


def order(tasks):
    return sorted(tasks, key=id)                     # SIM103


def order_lambda(tasks):
    tasks.sort(key=lambda t: (t.prio, id(t)))        # SIM103
    return tasks


def first(tasks):
    return min(tasks, key=lambda t: id(t))           # SIM103
