"""SIM101 fixture: every statement below reads host wall-clock/entropy."""

import datetime
import os
import time
import uuid
from time import monotonic


def stamp() -> float:
    return time.time()                   # SIM101


def stamp_mono() -> float:
    return monotonic()                   # SIM101 (from-import alias)


def today():
    return datetime.datetime.now()       # SIM101


def nonce() -> bytes:
    return os.urandom(16)                # SIM101


def run_id():
    return uuid.uuid4()                  # SIM101
