"""Suppression fixture: one SIM101 silenced, one left to fire."""

import time


def timed() -> float:
    return time.time()  # simcheck: ignore[SIM101]


def untimed() -> float:
    return time.time()                   # SIM101 (not suppressed)
