"""Wheel-vs-heap equivalence battery.

The two EventLoop engines must be observationally identical: any program
of ``call_at``/``call_after``/``call_every``/``cancel`` (including cancel
after fire and scheduling/cancelling from inside callbacks) must produce
the same firing sequence — same tags, same instants, same tie-break order
— and leave the loop in the same observable state.  Campaign digests
being bit-identical between engines reduces to exactly this property.

The random program interpreter below deliberately mixes time scales so
every wheel structure is exercised: the active window (< 4.096 µs),
all three bucket levels, and the far-future overflow heap (> 2**36 ns),
plus cascades between them and windows skipped over idle gaps.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventLoop

# Offsets straddling every wheel level boundary (slot width 2**12 ns,
# level spans 2**20 / 2**28 / 2**36 ns) plus the far-overflow region.
_OFFSETS = st.one_of(
    st.integers(0, 5_000),
    st.integers(0, (1 << 21) + 3),
    st.integers((1 << 20) - 2, (1 << 20) + 2),
    st.integers(0, (1 << 29) + 7),
    st.integers((1 << 28) - 2, (1 << 28) + 2),
    st.integers((1 << 36) - 4_096, (1 << 36) + (1 << 20)),
    st.integers(0, 1 << 40),
)

_PERIODS = st.one_of(
    st.integers(1, 1_000),
    st.integers(1, 1 << 22),
    st.integers(1 << 27, 1 << 30),
)

# Ops runnable from inside a callback (no nested run_until/step — the
# engines forbid re-entrant draining just like asyncio does).
_NESTED_OP = st.one_of(
    st.tuples(st.just("at"), _OFFSETS),
    st.tuples(st.just("after"), _OFFSETS),
    st.tuples(st.just("every"), _PERIODS),
    st.tuples(st.just("cancel"), st.integers(0, 63)),
)

_TOP_OP = st.one_of(
    st.tuples(st.just("at"), _OFFSETS, st.lists(_NESTED_OP, max_size=3)),
    st.tuples(st.just("after"), _OFFSETS, st.lists(_NESTED_OP, max_size=3)),
    st.tuples(st.just("every"), _PERIODS, st.lists(_NESTED_OP, max_size=2)),
    st.tuples(st.just("cancel"), st.integers(0, 63), st.just(())),
    st.tuples(st.just("run"), _OFFSETS, st.just(())),
    st.tuples(st.just("step"), st.just(0), st.just(())),
)

#: A periodic handle auto-cancels after this many fires so run_until over
#: a huge horizon stays bounded.  Deterministic, hence engine-invariant.
_MAX_FIRES = 30


def _interpret(impl: str, program):
    """Run ``program`` on a fresh loop; return (trace, final state)."""
    loop = EventLoop(impl=impl)
    handles = []
    trace = []
    fires = {}
    tag_counter = [0]

    def schedule(kind, amount, nested):
        tag = tag_counter[0]
        tag_counter[0] += 1
        periodic = kind == "every"

        def cb():
            trace.append((tag, loop.now))
            n = fires.get(tag, 0) + 1
            fires[tag] = n
            if periodic and n >= _MAX_FIRES:
                handle.cancel()
                return
            for op in nested:
                apply(op, ())

        if kind == "at":
            handle = loop.call_at(loop.now + amount, cb)
        elif kind == "after":
            handle = loop.schedule(amount, cb)
        else:
            handle = loop.call_every(amount, cb)
        handles.append(handle)

    def apply(op, nested_tail):
        kind, amount = op[0], op[1]
        nested = op[2] if len(op) > 2 else nested_tail
        if kind in ("at", "after", "every"):
            schedule(kind, amount, nested)
        elif kind == "cancel":
            if handles:
                handles[amount % len(handles)].cancel()
        elif kind == "run":
            loop.run_until(loop.now + amount)
        elif kind == "step":
            loop.step()

    for op in program:
        apply(op, ())
    # Drain what's left so late/far events are compared too.
    loop.run(max_events=20_000)
    state = (loop.now, loop.pending, loop.pushes, loop.pops)
    return trace, state


@settings(max_examples=80, deadline=None)
@given(program=st.lists(_TOP_OP, min_size=1, max_size=40))
def test_random_program_equivalence(program):
    heap_trace, heap_state = _interpret("heap", program)
    wheel_trace, wheel_state = _interpret("wheel", program)
    assert wheel_trace == heap_trace
    assert wheel_state == heap_state


@settings(max_examples=40, deadline=None)
@given(
    offsets=st.lists(_OFFSETS, min_size=1, max_size=30),
    horizon=_OFFSETS,
)
def test_one_shot_ordering_equivalence(offsets, horizon):
    """Pure call_at programs: identical (time, tie-break) firing order."""

    def run(impl):
        loop = EventLoop(impl=impl)
        trace = []
        for i, off in enumerate(offsets):
            loop.call_at(off, (lambda v: lambda: trace.append((v, loop.now)))(i))
        loop.run_until(horizon)
        trace.append(("now", loop.now, loop.pending))
        loop.run()
        return trace

    assert run("wheel") == run("heap")


def test_far_future_event_interleaves_with_near_ones():
    """An overflow-heap event must fire in exact order once the window
    reaches it, even when nearer events are scheduled around it later."""

    def run(impl):
        loop = EventLoop(impl=impl)
        trace = []
        far_t = (1 << 36) + 12_345           # beyond the wheel span
        loop.call_at(far_t, lambda: trace.append(("far", loop.now)))
        # March the clock most of the way there, then surround the far
        # event with near ones — same instant included.
        loop.run_until(far_t - 500)
        for d, tag in ((far_t - 100, "before"), (far_t, "same_a"),
                       (far_t, "same_b"), (far_t + 50, "after")):
            loop.call_at(d, (lambda v: lambda: trace.append((v, loop.now)))(tag))
        loop.run()
        return trace

    out = run("wheel")
    assert out == run("heap")
    assert [t for t, _ in out] == ["before", "far", "same_a", "same_b", "after"]


def test_mid_callback_same_instant_scheduling_matches():
    """Events scheduled at ``now`` from a callback fire this instant, after
    everything already queued for it — identically on both engines."""

    def run(impl):
        loop = EventLoop(impl=impl)
        trace = []

        def first():
            trace.append("first")
            loop.call_at(loop.now, lambda: trace.append("nested"))
            loop.schedule(0, lambda: trace.append("nested2"))

        loop.call_at(1000, first)
        loop.call_at(1000, lambda: trace.append("second"))
        loop.run_until(1000)
        return trace

    out = run("wheel")
    assert out == run("heap")
    assert out == ["first", "second", "nested", "nested2"]


def test_cancel_after_fire_is_noop_on_both():
    for impl in ("heap", "wheel"):
        loop = EventLoop(impl=impl)
        h = loop.schedule(10, lambda: None)
        live = loop.schedule(20, lambda: None)
        loop.run_until(15)
        h.cancel()                 # already fired: must not double-decrement
        assert loop.pending == 1, impl
        live.cancel()
        assert loop.pending == 0, impl


def test_periodic_cancel_from_own_callback_matches():
    def run(impl):
        loop = EventLoop(impl=impl)
        trace = []
        count = [0]

        def tick():
            count[0] += 1
            trace.append(loop.now)
            if count[0] == 5:
                handle.cancel()

        handle = loop.call_every(70_000, tick)  # crosses slot boundaries
        loop.run_until(10**7)
        trace.append(loop.pending)
        return trace

    assert run("wheel") == run("heap")


def test_unknown_impl_rejected():
    import pytest

    with pytest.raises(ValueError, match="unknown EventLoop impl"):
        EventLoop(impl="calendar")


def test_env_var_selects_engine(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "heap")
    assert EventLoop().impl == "heap"
    monkeypatch.setenv("REPRO_ENGINE", "wheel")
    assert EventLoop().impl == "wheel"
    monkeypatch.delenv("REPRO_ENGINE")
    assert EventLoop().impl == "wheel"   # default engine
