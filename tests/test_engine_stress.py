"""Stress and edge-case tests for the event loop and periodic processes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventLoop
from repro.sim.process import PeriodicProcess


class TestEventLoopStress:
    def test_many_events_in_order(self, loop):
        import random

        rng = random.Random(7)
        times = [rng.randint(1, 10 ** 9) for _ in range(20_000)]
        fired = []
        for t in times:
            loop.call_at(t, (lambda v: lambda: fired.append(v))(t))
        loop.run()
        assert fired == sorted(times)

    def test_cancel_storm(self, loop):
        handles = [loop.schedule(i + 1, lambda: None) for i in range(10_000)]
        for h in handles[::2]:
            h.cancel()
        assert loop.pending == 5_000
        assert loop.run() == 5_000

    def test_self_rescheduling_chain_terminates_at_horizon(self, loop):
        count = [0]

        def tick():
            count[0] += 1
            loop.schedule(10, tick)

        loop.schedule(10, tick)
        loop.run_until(1_000)
        assert count[0] == 100

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_clock_never_goes_backwards(self, delays):
        loop = EventLoop()
        observed = []
        for d in delays:
            loop.schedule(d, (lambda: observed.append(loop.now)))
        loop.run()
        assert observed == sorted(observed)

    def test_event_scheduled_during_run_until_at_horizon(self, loop):
        fired = []
        loop.call_at(100, lambda: loop.call_at(100, lambda: fired.append(1)))
        loop.run_until(100)
        assert fired == [1]


class TestPeriodicEdgeCases:
    def test_two_processes_same_period_interleave_deterministically(
            self, loop):
        order = []
        p1 = PeriodicProcess(loop, 100, lambda: order.append("a"))
        p2 = PeriodicProcess(loop, 100, lambda: order.append("b"))
        p1.start()
        p2.start()
        loop.run_until(300)
        assert order == ["a", "b"] * 3

    def test_stop_inside_other_callback(self, loop):
        order = []
        p2 = PeriodicProcess(loop, 100, lambda: order.append("b"))

        def killer():
            order.append("a")
            p2.stop()

        p1 = PeriodicProcess(loop, 100, killer)
        p1.start()
        p2.start()
        loop.run_until(250)
        # p2's first tick is cancelled by p1's same-instant earlier tick.
        assert order == ["a", "a"]
