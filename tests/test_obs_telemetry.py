"""Tests for the SLO telemetry layer: flow latency histograms
(:mod:`repro.obs.latency`), backpressure causality attribution
(:mod:`repro.obs.causality`), streaming snapshots and telemetry diffing
(:mod:`repro.obs.stream`), plus histogram aggregation and the
digest-invisibility contract the campaign runner relies on.
"""

import json
import math

import pytest

from repro.experiments.common import Scenario, build_linear_chain
from repro.metrics.histogram import CycleHistogram
from repro.obs.causality import (
    ATTRIBUTION_HEADERS,
    CausalityTracer,
    attribution_rows,
    render_attribution_table,
    render_induced_by_flow,
)
from repro.obs.latency import (
    FlowLatencyTracker,
    merge_latency_dicts,
    percentile_row,
    render_slo_table,
    summarize,
)
from repro.obs.stream import SnapshotStreamer, diff_telemetry, load_telemetry
from repro.sim.clock import MSEC
from repro.sim.engine import EventLoop


def build_scenario(**kwargs):
    scenario = Scenario(scheduler="BATCH", features="NFVnice", **kwargs)
    build_linear_chain(scenario, (120, 550), core=0)
    scenario.add_flow("f", "chain", line_rate_fraction=0.5)
    return scenario


class TestHistogramBuckets:
    """Satellite coverage: exact bucket-boundary behaviour."""

    def test_sub_one_values_land_in_bucket_zero(self):
        h = CycleHistogram()
        h.add(0.0)
        h.add(0.999)
        assert h.count == 2
        assert h._counts[0] == 2
        # Bucket 0's representative value is 0.5.
        assert h.percentile(50) == 0.5

    def test_bucket_edge_value_matches_bucket_fn(self):
        """add()'s inlined bucket math must agree with _bucket() exactly,
        including at power-of-two bucket edges where float log is touchy."""
        h = CycleHistogram(bins_per_octave=4)
        for value in (1.0, 2.0, 4.0, 1024.0, 2.0 ** 0.25, 3.0, 1e6):
            expected = h._bucket(value)
            before = list(h._counts)
            h.add(value)
            changed = [i for i, (a, b) in
                       enumerate(zip(before, h._counts)) if a != b]
            assert changed == [expected], value

    def test_max_value_clamps_to_last_bucket(self):
        h = CycleHistogram(max_value=1e3)
        last = len(h._counts) - 1
        h.add(1e12)  # far beyond max_value
        assert h._counts[last] == 1
        # percentile falls back to the recorded max for the last bucket.
        assert h.percentile(99) <= 1e12

    def test_relative_bucket_width(self):
        """8 bins/octave gives ~9% relative resolution (latency tracker)."""
        h = CycleHistogram(bins_per_octave=8)
        width = math.exp(1 / h._scale)
        assert width == pytest.approx(2 ** (1 / 8))
        assert width - 1 < 0.095


class TestHistogramAggregation:
    def test_to_dict_from_dict_round_trip(self):
        h = CycleHistogram(bins_per_octave=8)
        for v in (0.5, 17, 400, 1e6):
            h.add(v, weight=3)
        data = h.to_dict()
        back = CycleHistogram.from_dict(json.loads(json.dumps(data)))
        assert back.to_dict() == data
        assert back.count == h.count
        assert back.percentile(99) == h.percentile(99)

    def test_to_dict_trims_trailing_zeros(self):
        h = CycleHistogram()
        h.add(10)
        data = h.to_dict()
        assert data["counts"][-1] != 0
        assert len(data["counts"]) < data["n_bins"]

    def test_merge_equals_single_accumulation(self):
        whole, a, b = (CycleHistogram(bins_per_octave=8) for _ in range(3))
        for i, v in enumerate((5, 50, 500, 5000, 50000)):
            whole.add(v)
            (a if i % 2 == 0 else b).add(v)
        a.merge(b)
        assert a.to_dict() == whole.to_dict()

    def test_merge_order_invariant_counts(self):
        parts = []
        for base in (1, 10, 100):
            h = CycleHistogram()
            for i in range(5):
                h.add(base * (i + 1))
            parts.append(h.to_dict())
        ab = CycleHistogram.from_dict(parts[0]).merge(
            CycleHistogram.from_dict(parts[1])).merge(
            CycleHistogram.from_dict(parts[2]))
        ba = CycleHistogram.from_dict(parts[2]).merge(
            CycleHistogram.from_dict(parts[1])).merge(
            CycleHistogram.from_dict(parts[0]))
        assert ab._counts == ba._counts
        assert ab.count == ba.count
        assert ab.min == ba.min and ab.max == ba.max

    def test_merge_extends_counts(self):
        small = CycleHistogram(max_value=10)
        big = CycleHistogram(max_value=1e9)
        big.add(1e8)
        small.merge(big)
        assert small.count == 1
        assert len(small._counts) == len(big._counts)
        assert small.percentile(50) == big.percentile(50)

    def test_merge_bins_mismatch_raises(self):
        with pytest.raises(ValueError):
            CycleHistogram(bins_per_octave=4).merge(
                CycleHistogram(bins_per_octave=8))


class TestFlowLatencyTracker:
    def test_records_per_flow_and_chain(self):
        t = FlowLatencyTracker()
        t.record_delivery("f1", "c", 1000, 2)
        t.record_delivery("f2", "c", 9000, 1)
        d = t.to_dict()
        assert d["flows"]["f1"]["count"] == 2
        assert d["flows"]["f2"]["count"] == 1
        assert d["chains"]["c"]["count"] == 3
        assert len(t) == 2

    def test_overflow_class_bounds_memory(self):
        t = FlowLatencyTracker(max_flows=2)
        for i in range(5):
            t.record_delivery(f"f{i}", "c", 100, 1)
        d = t.to_dict()
        assert set(d["flows"]) == {"f0", "f1", FlowLatencyTracker.OVERFLOW}
        assert d["flows"][FlowLatencyTracker.OVERFLOW]["count"] == 3

    def test_record_hop_clamps_negative_wait(self):
        t = FlowLatencyTracker()
        t.record_hop("nf1", -5, 120, 4)
        d = t.to_dict()
        assert d["hops"]["nf1"]["wait"]["count"] == 4
        assert d["hops"]["nf1"]["wait"]["max"] == 0.0
        assert d["hops"]["nf1"]["service"]["count"] == 4

    def test_export_mid_run_then_keep_recording(self):
        """to_dict() drains the staging layer; later samples still land."""
        t = FlowLatencyTracker()
        t.record_delivery("f", "c", 100, 1)
        assert t.to_dict()["flows"]["f"]["count"] == 1
        t.record_delivery("f", "c", 100, 2)
        assert t.to_dict()["flows"]["f"]["count"] == 3

    def test_pending_limit_drains_incrementally(self):
        t = FlowLatencyTracker()
        limit = FlowLatencyTracker._PENDING_LIMIT
        for v in range(limit + 10):
            t.record_delivery("f", "c", v + 1, 1)
        # The staging dict was drained at the cap, not grown past it.
        assert len(t._pending_deliv[("f", "c")]) < limit
        assert t.to_dict()["flows"]["f"]["count"] == limit + 10

    def test_to_dict_shape_and_summary(self):
        t = FlowLatencyTracker()
        t.record_delivery("f", "c", 2000, 10)
        t.record_hop("nf1", 100, 50, 10)
        d = t.to_dict()
        assert set(d) == {"flows", "chains", "hops", "hop_order"}
        assert d["hop_order"] == ["nf1"]
        s = t.summary()
        assert s["flows"]["f"]["count"] == 10
        assert s["hops"]["nf1"]["count"] == 10
        # 2000 ns is 2 us; bucketed percentile is within one bucket width.
        assert s["flows"]["f"]["p50_us"] == pytest.approx(2.0, rel=0.1)

    def test_percentile_row_keys(self):
        t = FlowLatencyTracker()
        t.record_delivery("f", "c", 1500, 1)
        row = percentile_row(t.to_dict()["flows"]["f"])
        assert set(row) == {"count", "p50_us", "p95_us", "p99_us",
                            "p99_9_us", "mean_us", "max_us"}

    def test_summarize_empty(self):
        assert summarize({}) == {}

    def test_merge_latency_dicts_equals_combined_run(self):
        whole, a, b = FlowLatencyTracker(), FlowLatencyTracker(), \
            FlowLatencyTracker()
        samples = [("f1", "c", 100, 1), ("f2", "c", 9000, 2),
                   ("f1", "c", 350, 4)]
        for i, s in enumerate(samples):
            whole.record_delivery(*s)
            (a if i % 2 == 0 else b).record_delivery(*s)
        whole.record_hop("nf1", 10, 20, 3)
        a.record_hop("nf1", 10, 20, 3)
        merged = merge_latency_dicts([a.to_dict(), b.to_dict()])
        assert merged["flows"] == whole.to_dict()["flows"]
        assert merged["hops"] == whole.to_dict()["hops"]
        assert merge_latency_dicts([]) == {}
        assert merge_latency_dicts([{}, {}]) == {}

    def test_render_slo_table(self):
        t = FlowLatencyTracker()
        t.record_delivery("f", "c", 1000, 5)
        text = render_slo_table(t.to_dict(), "SLO")
        assert "flow:f" in text and "chain:c" in text
        empty = render_slo_table({}, "SLO")
        assert "no telemetry recorded" in empty


class TestCausalityTracer:
    def test_episode_lifecycle_and_throttle_ns(self):
        tr = CausalityTracer()
        tr.on_throttle("nf2", "c", 100)
        tr.on_clear("nf2", "c", 400)
        tr.on_throttle("nf2", "c", 1000)
        tr.on_clear("nf2", "c", 1600)
        assert tr.episode_counts["nf2"] == 2
        assert tr.throttle_ns["nf2"] == 300 + 600
        s = tr.summary(now_ns=2000)
        assert s["culprits"]["nf2"]["episodes"] == 2
        assert s["culprits"]["nf2"]["open_episodes"] == 0

    def test_open_episode_counted_to_now(self):
        tr = CausalityTracer()
        tr.on_throttle("nf3", "c", 500)
        s = tr.summary(now_ns=1500)
        assert s["culprits"]["nf3"]["open_episodes"] == 1
        assert s["culprits"]["nf3"]["throttle_ns"] == 1000
        # summary() must not close the episode.
        tr.on_clear("nf3", "c", 2000)
        assert tr.throttle_ns["nf3"] == 1500

    def test_clear_wrong_culprit_ignored(self):
        tr = CausalityTracer()
        tr.on_throttle("nf2", "c", 0)
        tr.on_clear("nf3", "c", 100)  # reclaimed under a different NF
        assert "nf2" not in tr.throttle_ns  # still open
        tr.on_clear("nf2", "c", 200)
        assert tr.throttle_ns["nf2"] == 200

    def test_delivery_overlap_attribution_exact(self):
        tr = CausalityTracer()
        tr.on_throttle("nf2", "c", 100)
        tr.on_clear("nf2", "c", 300)
        # Sojourn [0, 500] overlaps [100, 300] for 200 ns; 3 packets.
        tr.on_delivery("f", "c", 0, 500, 3)
        assert tr.induced[("f", "nf2")] == 200 * 3
        # Sojourn entirely after the episode: no attribution.
        tr.on_delivery("f", "c", 400, 600, 1)
        assert tr.induced[("f", "nf2")] == 600
        # Overlap with an open episode runs to delivery time.
        tr.on_throttle("nf3", "c", 700)
        tr.on_delivery("f", "c", 650, 900, 1)
        assert tr.induced[("f", "nf3")] == 200

    def test_delivery_attribution_matches_bruteforce(self):
        """The prefix-sum fast path must equal per-episode overlap math
        across mixed culprits, partial overlaps and an open episode."""
        script = [("nf2", 100, 200), ("nf2", 300, 450), ("nf3", 500, 700),
                  ("nf3", 900, 950), ("nf2", 1000, 1300),
                  ("nf4", 1400, 1450), ("nf9", 1500, None)]  # last open
        deliveries = [(0, 120, 1), (150, 430, 3), (440, 960, 2),
                      (700, 1290, 1), (1310, 1390, 5), (1451, 1700, 2)]
        # Events must replay in simulated-time order — the tracer (like
        # the platform) never sees a delivery older than a closed episode.
        events = []
        for culprit, start, end in script:
            events.append((start, "throttle", (culprit, start)))
            if end is not None:
                events.append((end, "clear", (culprit, end)))
        for origin, now, count in deliveries:
            events.append((now, "deliver", (origin, now, count)))
        tr = CausalityTracer()
        for _t, kind, args in sorted(events, key=lambda e: (e[0], e[1])):
            if kind == "throttle":
                tr.on_throttle(args[0], "c", args[1])
            elif kind == "clear":
                tr.on_clear(args[0], "c", args[1])
            else:
                origin, now, count = args
                tr.on_delivery("f", "c", origin, now, count)

        expected = {}
        for origin, now, count in deliveries:
            for culprit, start, end in script:
                hi = min(end if end is not None else now, now)
                lo = max(start, origin)
                if hi > lo:
                    key = ("f", culprit)
                    expected[key] = expected.get(key, 0) + (hi - lo) * count
        assert tr.induced == expected

    def test_entry_discard_attributes_open_culprit(self):
        tr = CausalityTracer()
        tr.on_entry_discard("c", "f", 7)  # no open episode
        assert tr.shed[("f", "?")] == 7
        tr.on_throttle("nf2", "c", 0)
        tr.on_entry_discard("c", "f", 5)
        assert tr.shed[("f", "nf2")] == 5

    def test_relinquish_and_resume_accounting(self):
        tr = CausalityTracer()
        tr.on_relinquish("nf1", True, 100)
        tr.on_relinquish("nf1", False, 600)
        assert tr.relinquish["nf1"] == [1, 500]
        # Next dispatch of nf1 closes the resume gap; other tasks don't.
        tr.on_dispatch("nf9", 700)
        tr.on_dispatch("nf1", 850)
        assert tr.resume["nf1"] == [1, 250]
        # A second dispatch without a pending release adds nothing.
        tr.on_dispatch("nf1", 900)
        assert tr.resume["nf1"] == [1, 250]

    def test_episode_cap_prunes_oldest(self):
        from repro.obs import causality

        tr = CausalityTracer()
        n = causality._MAX_EPISODES_PER_CHAIN + 1
        for i in range(n):
            tr.on_throttle("nf2", "c", i * 10)
            tr.on_clear("nf2", "c", i * 10 + 5)
        assert tr.pruned_episodes > 0
        log = tr._closed["c"]
        assert len(log.ends) < n
        # Parallel arrays stay consistent after the prune.
        assert len(log.starts) == len(log.ends) == len(log.culprits) \
            == len(log.cum) == len(log.run_start)
        assert log.cum[0] == log.ends[0] - log.starts[0]
        assert tr.episode_counts["nf2"] == n  # counters keep the total

    def test_summary_is_json_safe_and_sorted(self):
        tr = CausalityTracer()
        tr.on_throttle("nf2", "c", 0)
        tr.on_entry_discard("c", "f2", 1)
        tr.on_wasted_drop("nf2", 4)
        tr.on_delivery("f1", "c", 0, 100, 1)
        s = tr.summary(now_ns=100)
        assert json.loads(json.dumps(s, sort_keys=True)) == \
            json.loads(json.dumps(s, sort_keys=True))
        assert s["wasted_drops"] == {"nf2": 4}
        assert s["shed_packets"] == {"f2→nf2": 1}
        assert s["induced_pkt_ns"] == {"f1→nf2": 100}

    def test_attribution_rows_and_tables(self):
        tr = CausalityTracer()
        tr.on_throttle("nf2", "c", 0)
        tr.on_entry_discard("c", "f", 9)  # shed while nf2's episode open
        tr.on_clear("nf2", "c", 2_000_000)
        tr.on_delivery("f", "c", 0, 3_000_000, 2)
        tr.on_wasted_drop("nf2", 3)
        rows = attribution_rows(tr.summary(now_ns=3_000_000))
        assert len(rows) == 1
        nf, episodes, throttle_ms, induced_ms, shed, wasted = rows[0]
        assert nf == "nf2" and episodes == 1
        assert throttle_ms == 2.0
        assert induced_ms == 4.0  # 2 ms overlap x 2 packets
        assert shed == 9 and wasted == 3
        assert len(ATTRIBUTION_HEADERS) == len(rows[0])
        table = render_attribution_table(tr.summary(3_000_000), "t")
        assert "nf2" in table
        assert "no backpressure activity" in \
            render_attribution_table({}, "t")
        flow_table = render_induced_by_flow(tr.summary(3_000_000), "t")
        assert "f" in flow_table and "nf2" in flow_table
        assert "(none)" in render_induced_by_flow({}, "t")


class TestSnapshotStreamer:
    def test_rejects_nonpositive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStreamer(str(tmp_path / "s.jsonl"), 0)

    def test_periodic_snapshots_and_finalize(self, tmp_path):
        path = tmp_path / "s.jsonl"
        loop = EventLoop()
        latency = FlowLatencyTracker()
        latency.record_delivery("f", "c", 1000, 1)
        causality = CausalityTracer()
        streamer = SnapshotStreamer(str(path), 10 * MSEC)
        streamer.register("case", loop, latency=latency,
                          causality=causality)
        loop.run_until(25 * MSEC)
        summary = streamer.finalize()
        assert "snapshots" in summary
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 3  # t=10ms, t=20ms, final
        assert all(obj["scenario"] == "case" for obj in lines)
        assert [obj["t_ns"] for obj in lines[:2]] == \
            [10 * MSEC, 20 * MSEC]
        assert lines[0]["latency"]["flows"]["f"]["count"] == 1
        assert "culprits" in lines[0]["causality"]

    def test_snapshot_gauges_scoped_to_scenario(self, tmp_path):
        from repro.obs.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.gauge("repro_depth", scenario="mine", nf="a").set(4)
        reg.gauge("repro_depth", scenario="other", nf="a").set(9)
        reg.counter("repro_hits_total", fn=lambda: 2, scenario="mine")
        loop = EventLoop()
        streamer = SnapshotStreamer(str(tmp_path / "s.jsonl"), MSEC)
        streamer.register("mine", loop, registry=reg)
        streamer.finalize()
        snap = json.loads(
            (tmp_path / "s.jsonl").read_text().splitlines()[0])
        assert snap["gauges"]["repro_depth|nf=a"] == 4.0
        assert snap["gauges"]["repro_hits_total"] == 2.0
        assert len(snap["gauges"]) == 2  # "other" scenario filtered out

    def test_stream_files_byte_identical_across_runs(self, tmp_path):
        def run(path):
            loop = EventLoop()
            latency = FlowLatencyTracker()
            latency.record_delivery("f", "c", 12345, 7)
            streamer = SnapshotStreamer(str(path), 5 * MSEC)
            streamer.register("case", loop, latency=latency)
            loop.run_until(12 * MSEC)
            streamer.finalize()
            return path.read_bytes()

        assert run(tmp_path / "a.jsonl") == run(tmp_path / "b.jsonl")


class TestTelemetryDiff:
    def _entry(self, p99=100.0):
        return {"latency": {"flows": {"f": {
            "count": 10, "p50_us": 10.0, "p95_us": 50.0,
            "p99_us": p99, "p99_9_us": p99 * 2,
        }}}}

    def test_no_regression_on_identical(self):
        a = {"case": self._entry()}
        report, n = diff_telemetry(a, a)
        assert n == 0
        assert "0 percentile regression(s)" in report

    def test_flags_regression_beyond_threshold(self):
        report, n = diff_telemetry({"case": self._entry(100.0)},
                                   {"case": self._entry(150.0)})
        assert n == 2  # p99 and p99.9 both grew 50%
        assert "REGRESSION case flow:f p99_us" in report
        assert "+50.0%" in report

    def test_absolute_floor_suppresses_jitter(self):
        # 50% relative growth but only 0.3 us absolute: below the floor.
        report, n = diff_telemetry({"case": self._entry(0.6)},
                                   {"case": self._entry(0.9)})
        assert n == 0

    def test_zero_baseline_growth_is_inf(self):
        report, n = diff_telemetry({"case": self._entry(0.0)},
                                   {"case": self._entry(5.0)})
        assert n >= 1
        assert "inf" in report

    def test_label_mismatch_skipped_not_flagged(self):
        report, n = diff_telemetry({"a": self._entry()},
                                   {"b": self._entry()})
        assert n == 0
        assert "only in" in report

    def test_load_telemetry_jsonl_last_wins(self, tmp_path):
        path = tmp_path / "s.jsonl"
        lines = [json.dumps({"scenario": "case", "t_ns": t,
                             "latency": {}}) for t in (1, 2, 3)]
        path.write_text("\n".join(lines) + "\n")
        loaded = load_telemetry(str(path))
        assert loaded["case"]["t_ns"] == 3

    def test_load_telemetry_plain_json_object(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps({"case": self._entry()}))
        loaded = load_telemetry(str(path))
        assert "latency" in loaded["case"]

    def test_load_telemetry_single_line_snapshot(self, tmp_path):
        path = tmp_path / "one.jsonl"
        path.write_text(json.dumps({"scenario": "case", "t_ns": 5}))
        assert load_telemetry(str(path))["case"]["t_ns"] == 5


class TestScenarioTelemetry:
    """End-to-end: telemetry through Scenario/manager wiring."""

    def test_scenario_telemetry_populates_result(self):
        scenario = build_scenario(telemetry=True)
        res = scenario.run(0.05)
        flows = res.flow_latency["flows"]
        assert flows["f"]["count"] > 0
        hops = res.flow_latency["hops"]
        assert set(hops) == {"nf1", "nf2"}
        assert res.flow_latency["hop_order"] == ["nf1", "nf2"]
        # The 550-cycle nf2 bottlenecks this chain, so the causality
        # tracer must attribute throttle episodes to it.
        assert res.causality["culprits"]["nf2"]["episodes"] > 0
        induced = res.causality["induced_pkt_ns"]
        assert any(key.endswith("→nf2") for key in induced)

    def test_telemetry_off_leaves_result_empty(self):
        res = build_scenario().run(0.05)
        assert res.flow_latency == {}
        assert res.causality == {}

    def test_telemetry_is_deterministic(self):
        def run():
            res = build_scenario(telemetry=True, seed=11).run(0.05)
            return json.dumps({"lat": res.flow_latency,
                               "cau": res.causality}, sort_keys=True)

        assert run() == run()

    def test_telemetry_does_not_perturb_digest(self):
        from repro.analysis.export import result_to_dict
        from repro.runner.digest import digest_of

        def run(telemetry):
            res = build_scenario(telemetry=telemetry, seed=5).run(0.05)
            return digest_of(result_to_dict(res))

        assert run(False) == run(True)

    def test_histograms_cover_all_delivered_packets(self):
        scenario = build_scenario(telemetry=True)
        res = scenario.run(0.05)
        delivered = sum(c.completed for c in res.chains.values())
        assert res.flow_latency["flows"]["f"]["count"] == delivered
        assert res.flow_latency["chains"]["chain"]["count"] == delivered
