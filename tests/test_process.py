"""Unit tests for periodic processes."""

import pytest

from repro.sim.process import PeriodicProcess


def test_fires_on_period(loop):
    ticks = []
    proc = PeriodicProcess(loop, 100, lambda: ticks.append(loop.now))
    proc.start()
    loop.run_until(350)
    assert ticks == [100, 200, 300]
    assert proc.fired == 3


def test_stop_halts_firing(loop):
    ticks = []
    proc = PeriodicProcess(loop, 100, lambda: ticks.append(loop.now))
    proc.start()
    loop.run_until(250)
    proc.stop()
    loop.run_until(1000)
    assert ticks == [100, 200]
    assert not proc.running


def test_start_is_idempotent(loop):
    ticks = []
    proc = PeriodicProcess(loop, 100, lambda: ticks.append(loop.now))
    proc.start()
    proc.start()
    loop.run_until(100)
    assert ticks == [100]


def test_restart_after_stop(loop):
    ticks = []
    proc = PeriodicProcess(loop, 100, lambda: ticks.append(loop.now))
    proc.start()
    loop.run_until(150)
    proc.stop()
    loop.run_until(400)
    proc.start()
    loop.run_until(600)
    assert ticks == [100, 500, 600]


def test_explicit_start_time(loop):
    ticks = []
    proc = PeriodicProcess(loop, 100, lambda: ticks.append(loop.now))
    proc.start(start_at=5)
    loop.run_until(210)
    assert ticks == [5, 105, 205]


def test_callback_may_stop_process(loop):
    ticks = []
    proc = PeriodicProcess(loop, 100, lambda: (ticks.append(loop.now),
                                               proc.stop()))
    proc.start()
    loop.run_until(1000)
    assert ticks == [100]


def test_zero_period_rejected(loop):
    with pytest.raises(ValueError):
        PeriodicProcess(loop, 0, lambda: None)
