"""Smoke + shape tests for every experiment module (short durations).

Full-length reproductions live in ``benchmarks/``; here each experiment
is exercised end-to-end at reduced duration and its key qualitative shape
is asserted.
"""

import pytest

from repro.experiments import ablations, ecn_extension
from repro.experiments import fig01_motivation as fig01
from repro.experiments import fig07_single_core_chain as fig07
from repro.experiments import fig09_shared_chains as fig09
from repro.experiments import fig10_variable_cost as fig10
from repro.experiments import fig11_chain_permutations as fig11
from repro.experiments import fig12_workload_mix as fig12
from repro.experiments import fig13_isolation as fig13
from repro.experiments import fig14_io as fig14
from repro.experiments import fig15_fairness as fig15
from repro.experiments import fig16_chain_length as fig16
from repro.experiments import tab05_multicore_chain as tab05
from repro.experiments import tuning_watermarks as tuning
from repro.experiments.common import FEATURE_SETS, Scenario, feature_config

DUR = 0.3  # seconds of simulated time per case


class TestCommon:
    def test_feature_sets_cover_paper_variants(self):
        assert set(FEATURE_SETS) == {"Default", "CGroup", "OnlyBKPR",
                                     "NFVnice"}

    def test_feature_config_toggles(self):
        cfg = feature_config("CGroup")
        assert cfg.enable_cgroups and not cfg.enable_backpressure
        cfg = feature_config("OnlyBKPR")
        assert not cfg.enable_cgroups and cfg.enable_backpressure

    def test_unknown_feature_set_rejected(self):
        with pytest.raises(ValueError):
            feature_config("Turbo")

    def test_scenario_requires_rate(self):
        scenario = Scenario()
        scenario.add_nf("nf", 100)
        scenario.add_chain("c", ["nf"])
        with pytest.raises(ValueError):
            scenario.add_flow("f", "c")

    def test_result_accessors(self):
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        scenario.add_nf("nf", 260)
        scenario.add_chain("c", ["nf"])
        scenario.add_flow("f", "c", rate_pps=1e6)
        res = scenario.run(DUR)
        assert res.chain("c").completed > 0
        assert res.nf("nf").processed > 0
        assert 0 <= res.core_utilization[0] <= 1.0
        assert res.scheduler == "BATCH" and res.features == "NFVnice"


class TestFig01:
    def test_normal_equal_split_heterogeneous(self):
        res = fig01.run_case("NORMAL", "heterogeneous", "even",
                             duration_s=DUR)
        shares = [res.nf(f"nf{i}").cpu_share for i in (1, 2, 3)]
        assert max(shares) - min(shares) < 0.12

    def test_rr_starves_light_nf_heterogeneous(self):
        res = fig01.run_case("RR_100MS", "heterogeneous", "even",
                             duration_s=DUR)
        assert res.nf("nf1").cpu_share > 0.8
        assert res.nf("nf3").cpu_share < 0.1

    def test_normal_preempts_far_more_than_batch(self):
        normal = fig01.run_case("NORMAL", "heterogeneous", "even",
                                duration_s=DUR)
        batch = fig01.run_case("BATCH", "heterogeneous", "even",
                               duration_s=DUR)
        nv_normal = sum(normal.nf(f"nf{i}").nvcswch_per_s for i in (1, 2))
        nv_batch = sum(batch.nf(f"nf{i}").nvcswch_per_s for i in (1, 2))
        assert nv_normal > 5 * max(nv_batch, 1)

    def test_formatters(self):
        results = {
            f"{cm}/{lm}/{s}": fig01.run_case(s, cm, lm, duration_s=0.2)
            for cm in ("homogeneous",)
            for lm in ("even",)
            for s in fig01.SCHEDULERS
        }
        # Formatters need the full grid only for the mixes they print.
        table = fig01.format_throughput_table(
            {**results,
             **{k.replace("even", "uneven"): v for k, v in results.items()}},
            "homogeneous")
        assert "Figure 1a" in table


class TestFig07:
    @pytest.fixture(scope="class")
    def grid(self):
        return fig07.run_grid(schedulers=("BATCH",), duration_s=DUR)

    def test_nfvnice_beats_default(self, grid):
        assert grid[("BATCH", "NFVnice")].total_throughput_pps > \
            grid[("BATCH", "Default")].total_throughput_pps

    def test_table3_shape(self, grid):
        default = grid[("BATCH", "Default")]
        nfvnice = grid[("BATCH", "NFVnice")]
        for nf in ("nf1", "nf2"):
            assert nfvnice.nf(nf).wasted_pps < default.nf(nf).wasted_pps / 50

    def test_formatters(self, grid):
        assert "Figure 7" in fig07.format_figure7(grid)
        assert "Table 3" in fig07.format_table3(grid)
        assert "Table 4" in fig07.format_table4(grid)


class TestTab05:
    def test_cpu_savings(self):
        results = tab05.run_table5(duration_s=DUR)
        d, n = results["Default"], results["NFVnice"]
        assert n.core_utilization[0] < 0.4 * d.core_utilization[0]
        assert n.total_throughput_pps == pytest.approx(
            d.total_throughput_pps, rel=0.15)
        assert "Table 5" in tab05.format_table5(results)


class TestFig09:
    def test_innocent_chain_gains(self):
        results = fig09.run_fig9(duration_s=DUR)
        d, n = results["Default"], results["NFVnice"]
        assert n.chain("chain1").throughput_pps > \
            1.2 * d.chain("chain1").throughput_pps
        # The bottlenecked chain keeps (roughly) its bottleneck rate.
        assert n.chain("chain2").throughput_pps > \
            0.7 * d.chain("chain2").throughput_pps
        assert "Table 6" in fig09.format_table6(results)


class TestFig10:
    def test_backpressure_resilient_to_variable_cost(self):
        grid = fig10.run_grid(schedulers=("BATCH",), duration_s=DUR)
        assert grid[("BATCH", "OnlyBKPR")].total_throughput_pps > \
            grid[("BATCH", "Default")].total_throughput_pps
        assert "Figure 10" in fig10.format_figure10(grid)


class TestFig11:
    def test_heavy_first_rr100_collapse(self):
        res = fig11.run_case(("High", "Med", "Low"), "RR_100MS", "Default",
                             duration_s=DUR)
        assert res.total_throughput_pps < 60_000

    def test_nfvnice_consistent_across_orders(self):
        grid = fig11.run_grid(
            orders=(("Low", "Med", "High"), ("High", "Med", "Low")),
            schedulers=("BATCH",), duration_s=DUR)
        lo = grid[("Low-Med-High", "BATCH", "NFVnice")].total_throughput_pps
        hi = grid[("High-Med-Low", "BATCH", "NFVnice")].total_throughput_pps
        assert lo == pytest.approx(hi, rel=0.15)
        assert "Figure 11" in fig11.format_figure11(grid)


class TestFig12:
    def test_nfvnice_robust_to_flow_mix(self):
        grid = fig12.run_grid(types=(1, 3), schedulers=("BATCH",),
                              duration_s=DUR)
        nfv1 = grid[(1, "BATCH", "NFVnice")].total_throughput_pps
        nfv3 = grid[(3, "BATCH", "NFVnice")].total_throughput_pps
        assert nfv3 > 0.6 * nfv1
        assert "Figure 12" in fig12.format_figure12(grid)


class TestFig13:
    def test_isolation_shape_short(self):
        """Compressed version of the isolation run (still >= UDP window)."""
        import repro.experiments.fig13_isolation as mod

        results = {
            s: mod.run_case(s, duration_s=mod.UDP_OFF_S + 2)
            for s in ("Default", "NFVnice")
        }
        d, n = results["Default"], results["NFVnice"]
        assert d.tcp_before > 3.0
        assert d.tcp_during < 0.3          # collapse
        assert n.tcp_during > 0.5 * n.tcp_before  # protected
        assert "Figure 13" in mod.format_figure13(results)


class TestFig14:
    def test_async_io_wins(self):
        d = fig14.run_case(256, "Default", duration_s=DUR)
        n = fig14.run_case(256, "NFVnice", duration_s=DUR)
        d_bps = sum(c.throughput_bps for c in d.chains.values())
        n_bps = sum(c.throughput_bps for c in n.chains.values())
        assert n_bps > 5 * d_bps


class TestFig15:
    def test_dynamic_tuning_tracks_cost_step(self):
        res = fig15.run_dynamic_tuning("NFVnice")
        s1_initial = res.phase_shares["initial"][0]
        s1_stepped = res.phase_shares["stepped"][0]
        assert s1_initial < 0.35
        assert 0.4 < s1_stepped < 0.6

    def test_fairness_direction(self):
        d = fig15.run_diversity_level(4, "Default", duration_s=DUR)
        n = fig15.run_diversity_level(4, "NFVnice", duration_s=DUR)
        assert fig15.fairness_of(n) > fig15.fairness_of(d)
        assert fig15.fairness_of(n) > 0.95


class TestFig16:
    def test_longer_chains_still_flow(self):
        res = fig16.run_case(6, "SC", "NFVnice", duration_s=DUR)
        assert res.total_throughput_pps > 100_000

    def test_mc_beats_sc(self):
        sc = fig16.run_case(6, "SC", "NFVnice", duration_s=DUR)
        mc = fig16.run_case(6, "MC", "NFVnice", duration_s=DUR)
        assert mc.total_throughput_pps > sc.total_throughput_pps


class TestTuning:
    def test_tiny_margin_worse_than_paper_choice(self):
        tiny = tuning.run_point(0.80, 0.79, duration_s=DUR)
        paper = tuning.run_point(0.80, 0.60, duration_s=DUR)
        assert paper.total_throughput_pps >= 0.95 * tiny.total_throughput_pps

    def test_formatters(self):
        high = {0.8: tuning.run_point(0.8, 0.6, duration_s=0.2)}
        margin = {0.2: tuning.run_point(0.8, 0.6, duration_s=0.2)}
        out = tuning.format_sweeps(high, margin)
        assert "HIGH sweep" in out


class TestAblations:
    def test_selectivity_protects_innocent_chain(self):
        sel = ablations.run_selectivity(True, duration_s=0.5)
        agn = ablations.run_selectivity(False, duration_s=0.5)
        assert sel.chain("chain1").throughput_pps > \
            3 * max(agn.chain("chain1").throughput_pps, 1)

    def test_estimator_runs(self):
        res = ablations.run_estimator("mean", duration_s=0.2)
        assert res.total_throughput_pps > 0


class TestECNExtension:
    def test_ecn_eliminates_drops(self):
        results = ecn_extension.run_ecn(duration_s=2.0)
        assert results[True].lost_packets < results[False].lost_packets / 5
        assert results[True].marked_packets > 0
        assert results[True].goodput_gbps > 0.3 * results[False].goodput_gbps
