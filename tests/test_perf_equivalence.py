"""Equivalence tests for the hot-path performance work.

Every optimisation in the perf overhaul claims *bit-identical* results:
segment coalescing must not change what a dequeue observes, the periodic
fast path must fire at the same instants as a cancel+reschedule loop,
batched arrival generation must emit the same counts as scalar draws,
and the widened RNG draw-ahead in the cost models must consume the same
bit stream.  These tests pin each claim directly, so a future change
that quietly breaks digest stability fails here first, with a readable
diff, instead of as an opaque campaign-digest mismatch.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nfs.cost_models import (
    _RAW_REFILL,
    _REFILL,
    ChoiceCost,
    ExponentialCost,
    NormalCost,
    UniformCost,
)
from repro.platform.packet import Flow
from repro.platform.ring import PacketRing
from repro.sim.engine import EventLoop
from repro.traffic.flows import FlowSpec


class FakeChain:
    def __init__(self, name):
        self.name = name


def flow(fid, chain=None):
    f = Flow(fid)
    f.chain = chain
    return f


# ----------------------------------------------------------------------
# Ring coalescing: a coalesced ring is observationally identical to an
# uncoalesced one — same per-packet FIFO stream, same counters.
# ----------------------------------------------------------------------

def _packet_stream(segments):
    """Flatten dequeued segments to per-packet (flow_id, enq, origin)."""
    out = []
    for seg in segments:
        out.extend([(seg.flow.flow_id, seg.enqueue_ns, seg.origin_ns)]
                   * seg.count)
    return out


def _batch_stream(batch):
    """Flatten dequeue_batch tuples the same way."""
    out = []
    for fl, count, enq, origin, _span in batch:
        out.extend([(fl.flow_id, enq, origin)] * count)
    return out


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("enq"),
                  st.integers(min_value=0, max_value=2),   # flow index
                  st.integers(min_value=1, max_value=30),  # count
                  st.integers(min_value=0, max_value=3)),  # time advance
        st.tuples(st.just("deq"),
                  st.integers(min_value=1, max_value=40)),
    ),
    min_size=1, max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=ops_strategy)
def test_coalescing_preserves_fifo_counts_timestamps(ops):
    chains = [FakeChain("A"), FakeChain("B")]
    flows_a = [flow(f"f{i}", chains[i % 2]) for i in range(3)]
    flows_b = [flow(f"f{i}", chains[i % 2]) for i in range(3)]
    ring_a = PacketRing(capacity=64, coalesce=True)
    ring_b = PacketRing(capacity=64, coalesce=False)
    now = 0
    for op in ops:
        if op[0] == "enq":
            _, fi, count, dt = op
            now += dt
            ra = ring_a.enqueue(flows_a[fi], count, now)
            rb = ring_b.enqueue(flows_b[fi], count, now)
            assert ra == rb
        else:
            _, n = op
            sa = _packet_stream(ring_a.dequeue(n))
            sb = _packet_stream(ring_b.dequeue(n))
            assert sa == sb
        assert len(ring_a) == len(ring_b)
        assert ring_a.chain_count("A") == ring_b.chain_count("A")
        assert ring_a.chain_count("B") == ring_b.chain_count("B")
    # Drain and compare the remainder, then every counter.
    assert _packet_stream(ring_a.dequeue(10**6)) == \
        _packet_stream(ring_b.dequeue(10**6))
    for attr in ("enqueued_total", "dropped_total", "dequeued_total"):
        assert getattr(ring_a, attr) == getattr(ring_b, attr)
    for fa, fb in zip(flows_a, flows_b):
        assert fa.stats.queue_drops == fb.stats.queue_drops


@settings(max_examples=200, deadline=None)
@given(ops=ops_strategy)
def test_dequeue_batch_matches_dequeue(ops):
    """The tuple-yielding fast path is packet-for-packet identical to
    dequeue(), including partial takes from coalesced segments."""
    chain = FakeChain("A")
    flows_a = [flow(f"f{i}", chain) for i in range(3)]
    flows_b = [flow(f"f{i}", chain) for i in range(3)]
    ring_a = PacketRing(capacity=64)
    ring_b = PacketRing(capacity=64)
    now = 0
    for op in ops:
        if op[0] == "enq":
            _, fi, count, dt = op
            now += dt
            ring_a.enqueue(flows_a[fi], count, now)
            ring_b.enqueue(flows_b[fi], count, now)
        else:
            _, n = op
            assert _packet_stream(ring_a.dequeue(n)) == \
                _batch_stream(ring_b.dequeue_batch(n))
        assert len(ring_a) == len(ring_b)
        assert ring_a.chain_count("A") == ring_b.chain_count("A")
    assert ring_a.dequeued_total == ring_b.dequeued_total


def test_coalescing_counts_hits_and_misses():
    ring = PacketRing(capacity=100)
    f = flow("f")
    ring.enqueue(f, 5, now_ns=10)
    ring.enqueue(f, 5, now_ns=10)   # same instant: merges
    ring.enqueue(f, 5, now_ns=20)   # new instant: appends
    assert ring.coalesce_hits == 1
    assert ring.coalesce_misses == 2
    segs = ring.dequeue(100)
    assert [s.count for s in segs] == [10, 5]


def test_spanned_enqueue_never_coalesces():
    """A span must stay pinned to its own packet run."""
    ring = PacketRing(capacity=100)
    f = flow("f")
    ring.enqueue(f, 5, now_ns=10)
    ring.enqueue(f, 5, now_ns=10, span=object())
    assert ring.coalesce_hits == 0
    assert ring.coalesce_misses == 2


# ----------------------------------------------------------------------
# call_every: same fire instants and ordering as a cancel+reschedule loop.
# ----------------------------------------------------------------------

def test_call_every_matches_manual_reschedule():
    loop_a, loop_b = EventLoop(), EventLoop()
    fires_a, fires_b = [], []

    loop_a.call_every(7, lambda: fires_a.append(loop_a.now))

    def rearm():
        fires_b.append(loop_b.now)
        loop_b.call_at(loop_b.now + 7, rearm)

    loop_b.call_at(7, rearm)
    loop_a.run_until(100)
    loop_b.run_until(100)
    assert fires_a == fires_b == list(range(7, 101, 7))


def test_call_every_interleaves_like_reschedule():
    """Tie-breaking: the periodic re-arm consumes a seq number *before*
    its callback runs, exactly like reschedule-then-work did — so a
    one-shot scheduled from inside the callback at the same future
    instant fires *after* the next periodic tick, in both worlds."""
    def drive(use_call_every):
        loop = EventLoop()
        order = []

        def on_tick():
            if not use_call_every:
                # Reschedule-first, like PeriodicProcess did: the re-arm
                # consumes its seq number before the callback body runs.
                loop.call_at(loop.now + 10, on_tick)
            order.append(("tick", loop.now))
            # One-shot at the next tick's instant, scheduled after the
            # re-arm consumed its seq — loses the tie in both worlds.
            loop.call_at(loop.now + 10,
                         lambda: order.append(("shot", loop.now)))

        if use_call_every:
            loop.call_every(10, on_tick)
        else:
            loop.call_at(10, on_tick)
        loop.run_until(45)
        return order

    # In both variants the re-arm wins the tie at each instant; the
    # orderings must agree event-for-event.
    assert drive(True) == drive(False)


def test_call_every_cancel_stops_firing():
    loop = EventLoop()
    fires = []
    handle = loop.call_every(5, lambda: fires.append(loop.now))
    loop.run_until(20)
    handle.cancel()
    loop.run_until(100)
    assert fires == [5, 10, 15, 20]
    assert loop.pending == 0


def test_call_every_first_offset():
    loop = EventLoop()
    fires = []
    loop.call_every(10, lambda: fires.append(loop.now), first=3)
    loop.run_until(40)
    assert fires == [3, 13, 23, 33]


def test_call_every_rejects_bad_period():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.call_every(0, lambda: None)


# ----------------------------------------------------------------------
# call_at integer fast path: ns-scale times beyond 2**53 must not round.
# ----------------------------------------------------------------------

def test_call_at_integer_precision_beyond_float53():
    """2**53 ns is ~104 simulated days; a float detour there loses the
    low bit and adjacent events collapse onto one instant.  Integer
    inputs must bypass float math entirely."""
    loop = EventLoop()
    base = 2**53  # first integer where float spacing exceeds 1
    fired = []
    loop.call_at(base + 1, lambda: fired.append(loop.now))
    loop.call_at(base + 3, lambda: fired.append(loop.now))
    loop.run_until(base + 10)
    assert fired == [base + 1, base + 3]
    # float(2**53 + 1) == float(2**53): the fast path must not have
    # taken the float branch.
    assert float(base + 1) == float(base)  # the hazard being defended


def test_call_at_float_still_ceils():
    loop = EventLoop()
    times = []
    loop.call_at(10.2, lambda: times.append(loop.now))
    loop.call_at(11.0, lambda: times.append(loop.now))
    loop.run_until(20)
    assert times == [11, 11]


def test_bool_time_not_treated_as_int_fast_path():
    # bool is an int subclass but `type(x) is int` excludes it; the slow
    # path still handles it correctly.
    loop = EventLoop()
    fired = []
    loop.call_at(True, lambda: fired.append(loop.now))
    loop.run_until(5)
    assert fired == [1]


# ----------------------------------------------------------------------
# Batched arrivals: next_count() ≡ packets_this_tick(), tick for tick.
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    rate=st.floats(min_value=0.0, max_value=5e6,
                   allow_nan=False, allow_infinity=False),
    ticks=st.integers(min_value=1, max_value=700),
)
def test_cbr_batch_matches_scalar(rate, ticks):
    dt = 50_000
    a = FlowSpec(Flow("a"), rate)
    b = FlowSpec(Flow("b"), rate)
    scalar = [a.packets_this_tick(dt) for _ in range(ticks)]
    batched = [b.next_count(dt) for _ in range(ticks)]
    assert scalar == batched


@settings(max_examples=60, deadline=None)
@given(
    rate1=st.floats(min_value=1.0, max_value=5e6),
    rate2=st.floats(min_value=1.0, max_value=5e6),
    switch=st.integers(min_value=1, max_value=400),
    ticks=st.integers(min_value=2, max_value=700),
)
def test_cbr_batch_survives_midrun_rate_change(rate1, rate2, switch, ticks):
    """Figure 15a changes rate_pps mid-run; the batch must replay the
    carry recurrence and keep emitting the scalar sequence."""
    dt = 50_000
    a = FlowSpec(Flow("a"), rate1)
    b = FlowSpec(Flow("b"), rate1)
    scalar, batched = [], []
    for i in range(ticks):
        if i == switch:
            a.rate_pps = rate2
            b.rate_pps = rate2
        scalar.append(a.packets_this_tick(dt))
        batched.append(b.next_count(dt))
    assert scalar == batched


@settings(max_examples=40, deadline=None)
@given(
    rate=st.floats(min_value=1.0, max_value=2e6),
    ticks=st.integers(min_value=1, max_value=600),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_poisson_batch_matches_scalar(rate, ticks, seed):
    dt = 50_000
    a = FlowSpec(Flow("a"), rate, pattern="poisson")
    b = FlowSpec(Flow("b"), rate, pattern="poisson")
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    scalar = [a.packets_this_tick(dt, rng_a) for _ in range(ticks)]
    batched = [b.next_count(dt, rng_b, rng_batch=True)
               for _ in range(ticks)]
    assert scalar == batched


@settings(max_examples=30, deadline=None)
@given(
    rate1=st.floats(min_value=1.0, max_value=2e6),
    rate2=st.floats(min_value=1.0, max_value=2e6),
    switch=st.integers(min_value=1, max_value=300),
    ticks=st.integers(min_value=2, max_value=600),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_poisson_batch_rate_change_keeps_stream_position(
        rate1, rate2, switch, ticks, seed):
    """After a mid-batch rate change the generator must land exactly
    where scalar draws would have left it — including every later draw."""
    dt = 50_000
    a = FlowSpec(Flow("a"), rate1, pattern="poisson")
    b = FlowSpec(Flow("b"), rate1, pattern="poisson")
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    scalar, batched = [], []
    for i in range(ticks):
        if i == switch:
            a.rate_pps = rate2
            b.rate_pps = rate2
        scalar.append(a.packets_this_tick(dt, rng_a))
        batched.append(b.next_count(dt, rng_b, rng_batch=True))
    assert scalar == batched


def test_poisson_shared_rng_falls_back_to_scalar():
    """With rng_batch=False (several poisson specs share one generator)
    next_count must stay a scalar draw so interleaving is preserved."""
    spec = FlowSpec(Flow("a"), 1e6, pattern="poisson")
    rng = np.random.default_rng(7)
    spec.next_count(50_000, rng, rng_batch=False)
    assert spec._batch is None


# ----------------------------------------------------------------------
# Cost-model RNG draw-ahead: one wide draw ≡ many narrow draws.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sampler", [
    lambda r, n: r.normal(1000.0, 100.0, size=n),
    lambda r, n: r.uniform(50.0, 500.0, size=n),
    lambda r, n: r.exponential(250.0, size=n),
    lambda r, n: r.choice(np.array([100.0, 200.0, 400.0]), size=n,
                          p=np.array([0.5, 0.3, 0.2])),
])
def test_numpy_samplers_consume_stream_per_value(sampler):
    """The raw draw-ahead pool assumes numpy samplers consume the bit
    stream value-by-value: one size-8192 draw equals eight size-1024
    draws.  Pin that for every distribution the catalog uses."""
    rng_wide = np.random.default_rng(42)
    rng_narrow = np.random.default_rng(42)
    wide = sampler(rng_wide, _RAW_REFILL)
    narrow = np.concatenate([
        sampler(rng_narrow, _REFILL)
        for _ in range(_RAW_REFILL // _REFILL)
    ])
    assert np.array_equal(wide, narrow)


class _Reference:
    """Pre-draw-ahead BufferedCost semantics: each _ensure refill calls
    the sampler directly for exactly max(n - have, _REFILL) values."""

    def __init__(self, make):
        self.model = make()
        # Defeat the raw pool: serve _draw straight from the subclass.
        self.model._draw = self.model._draw_block


# ----------------------------------------------------------------------
# Grant-level batch fusion in NFProcess.execute: deferring the
# dequeue/forward to one flush per grant must not change any result.
# ----------------------------------------------------------------------

def test_fused_execute_matches_unfused(monkeypatch):
    """_forward_exact=False forces the per-batch (unfused) path; a full
    scenario must produce the identical digest either way."""
    from repro.analysis.export import result_to_dict
    from repro.core.nf import NFProcess
    from repro.experiments.fig07_single_core_chain import run_case
    from repro.runner.digest import digest_of

    fused = digest_of(result_to_dict(run_case("NORMAL", "NFVnice", 0.05)))
    monkeypatch.setattr(NFProcess, "_forward_exact", False)
    unfused = digest_of(result_to_dict(run_case("NORMAL", "NFVnice", 0.05)))
    assert fused == unfused


@pytest.mark.parametrize("make", [
    lambda rng: NormalCost(1000.0, 100.0, rng=rng),
    lambda rng: UniformCost(50.0, 500.0, rng=rng),
    lambda rng: ExponentialCost(250.0, rng=rng),
    lambda rng: ChoiceCost([100.0, 200.0, 400.0], [0.5, 0.3, 0.2],
                           rng=rng),
])
def test_buffered_cost_pool_is_stream_transparent(make):
    """consume/peek/consume_upto sequences are bit-identical with and
    without the raw draw-ahead pool."""
    fast = make(np.random.default_rng(11))
    ref = make(np.random.default_rng(11))
    ref._draw = ref._draw_block  # old behaviour: no widened pool
    budgets = [1_000.0, 50_000.0, 123.0, 9_999.5, 2**20 * 1.0]
    for i in range(200):
        b = budgets[i % len(budgets)]
        assert fast.peek_sum(7) == ref.peek_sum(7)
        assert fast.consume_upto(b, 32) == ref.consume_upto(b, 32)
        assert fast.consume(3) == ref.consume(3)
