"""Golden-run determinism: results must not depend on the process.

PR 1 fixed a ``PYTHONHASHSEED``-dependent iteration order in
``BackpressureController._watch``; these tests lock that in by running
the same experiment case in subprocesses with *different* hash seeds and
asserting identical canonical result digests.  The same machinery
underpins the campaign runner's parallel == serial guarantee, so these
are the trust anchor for ``python -m repro campaign``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: Tiny simulated horizon: enough events to exercise backpressure and
#: scheduling, small enough to keep each subprocess under a second.
DURATION_S = 0.05

_SNIPPETS = {
    "fig07": (
        "from repro.experiments.fig07_single_core_chain import run_case\n"
        "from repro.analysis.export import result_to_dict\n"
        "from repro.runner.digest import digest_of\n"
        f"res = run_case('NORMAL', 'NFVnice', duration_s={DURATION_S})\n"
        "print(digest_of(result_to_dict(res)))\n"
    ),
    "fig09": (
        "from repro.experiments.fig09_shared_chains import run_case\n"
        "from repro.analysis.export import result_to_dict\n"
        "from repro.runner.digest import digest_of\n"
        f"res = run_case('NFVnice', duration_s={DURATION_S})\n"
        "print(digest_of(result_to_dict(res)))\n"
    ),
    # Fault injection is part of the same contract: a chaos case's
    # incident log (onset, detection, recovery timestamps, loss counts)
    # must not depend on the interpreter's hash seed.
    "chaos": (
        "from repro.experiments.chaos_recovery import run_case\n"
        "from repro.analysis.export import result_to_dict\n"
        "from repro.runner.digest import digest_of\n"
        f"res = run_case('crash', 'restart-warm', 2.0, "
        f"duration_s={DURATION_S})\n"
        "print(digest_of(result_to_dict(res)))\n"
    ),
    # The SLO battery adds the remaining moving parts: arrival models
    # (MMPP gold + Poisson bulk), the deadline-CFS scheduler, and the
    # SLO governor's boost/migration decisions.
    "slo": (
        "from repro.experiments.slo_battery import run_case\n"
        "from repro.analysis.export import result_to_dict\n"
        "from repro.runner.digest import digest_of\n"
        f"res = run_case('mixed', 'DEADLINE', duration_s={DURATION_S})\n"
        "print(digest_of(result_to_dict(res)))\n"
    ),
}


def _digest_in_subprocess(snippet: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


@pytest.mark.parametrize("experiment", sorted(_SNIPPETS))
def test_golden_run_digest_invariant_under_hash_seed(experiment):
    """Two interpreters with different PYTHONHASHSEED values produce
    bit-identical results for the same experiment case."""
    snippet = _SNIPPETS[experiment]
    d1 = _digest_in_subprocess(snippet, "0")
    d2 = _digest_in_subprocess(snippet, "424242")
    assert len(d1) == 64  # a real sha256, not an error string
    assert d1 == d2, (
        f"{experiment} result digest depends on PYTHONHASHSEED "
        f"({d1[:12]}… vs {d2[:12]}…) — an unordered container is leaking "
        f"iteration order into simulation behaviour")


def test_digest_is_insertion_order_invariant():
    """The canonical digest itself must not care about dict key order."""
    from repro.runner.digest import digest_of

    a = {"x": 1.5, "y": [1, 2, 3], "z": {"k": "v", "j": 2}}
    b = {"z": {"j": 2, "k": "v"}, "y": [1, 2, 3], "x": 1.5}
    assert digest_of(a) == digest_of(b)
    assert digest_of(a) != digest_of({**a, "x": 1.5000000000000002})


def test_same_process_repeat_run_is_identical():
    """Re-running the same case twice in one interpreter matches exactly —
    no hidden global state bleeds between Scenario instances."""
    from repro.analysis.export import result_to_dict
    from repro.experiments.fig07_single_core_chain import run_case
    from repro.runner.digest import digest_of

    first = digest_of(result_to_dict(
        run_case("BATCH", "NFVnice", duration_s=DURATION_S)))
    second = digest_of(result_to_dict(
        run_case("BATCH", "NFVnice", duration_s=DURATION_S)))
    assert first == second


def test_slo_battery_digest_invariant_across_worker_counts():
    """The slo_battery campaign digest is a pure function of the case
    set: 1, 2 and 4 workers must chain per-case digests identically.
    This is the acceptance gate for the bursty/flash/mixed arrival
    models and the SLO governor under parallel execution."""
    from repro.runner.campaign import run_campaign

    digests = {}
    for workers in (1, 2, 4):
        campaign = run_campaign(["slo_battery"], workers=workers,
                                duration_s=DURATION_S)
        report = campaign.experiments["slo_battery"]
        assert report.ok, report.failures
        digests[workers] = report.digest
    assert digests[1] == digests[2] == digests[4], digests
