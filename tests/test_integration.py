"""End-to-end integration tests and system-level invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import Scenario, build_linear_chain
from repro.sim.clock import SEC


def packet_accounting(scenario, flows):
    """Every offered packet is delivered, discarded at entry, dropped at a
    ring (NF or NIC), or still in flight inside the system."""
    mgr = scenario.manager
    offered = sum(f.stats.offered for f in flows)
    delivered = sum(f.stats.delivered for f in flows)
    entry = sum(f.stats.entry_discards for f in flows)
    ring_drops = sum(f.stats.queue_drops for f in flows)
    in_flight = len(mgr.nic.rx_ring)
    for nf in mgr.nfs:
        in_flight += len(nf.rx_ring) + len(nf.tx_ring)
    return offered, delivered + entry + ring_drops + in_flight


class TestPacketConservation:
    @pytest.mark.parametrize("features", ["Default", "NFVnice"])
    @pytest.mark.parametrize("scheduler", ["NORMAL", "BATCH", "RR_1MS"])
    def test_conservation_single_chain(self, scheduler, features):
        scenario = Scenario(scheduler=scheduler, features=features)
        build_linear_chain(scenario, (120, 270, 550), core=0)
        flow = scenario.add_flow("f", "chain", line_rate_fraction=1.0)
        scenario.run(0.3)
        offered, accounted = packet_accounting(scenario, [flow])
        assert offered == accounted
        assert offered > 0

    def test_conservation_shared_chains_multicore(self):
        scenario = Scenario(scheduler="NORMAL", features="NFVnice",
                            num_rx_threads=2)
        for core_id, (name, cost) in enumerate(
                [("nf1", 270), ("nf2", 120), ("nf3", 4500), ("nf4", 300)]):
            scenario.add_nf(name, cost, core=core_id)
        scenario.add_chain("c1", ["nf1", "nf2", "nf4"])
        scenario.add_chain("c2", ["nf1", "nf3", "nf4"])
        f1 = scenario.add_flow("f1", "c1", line_rate_fraction=0.5)
        f2 = scenario.add_flow("f2", "c2", line_rate_fraction=0.5)
        scenario.run(0.3)
        offered, accounted = packet_accounting(scenario, [f1, f2])
        assert offered == accounted

    @given(costs=st.lists(st.sampled_from([120, 270, 550, 2200]),
                          min_size=1, max_size=5),
           fraction=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=10, deadline=None)
    def test_conservation_random_chains(self, costs, fraction):
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        build_linear_chain(scenario, costs, core=0)
        flow = scenario.add_flow("f", "chain", line_rate_fraction=fraction)
        scenario.run(0.1)
        offered, accounted = packet_accounting(scenario, [flow])
        assert offered == accounted


class TestSteadyStateProperties:
    def test_underload_is_lossless(self):
        """Offered load far below capacity: every packet delivered."""
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        build_linear_chain(scenario, (120, 270), core=0)
        flow = scenario.add_flow("f", "chain", rate_pps=100_000.0)
        result = scenario.run(0.5)
        # Allow the last tick's packets to still be in flight.
        assert flow.stats.delivered >= flow.stats.offered - 500
        assert flow.stats.lost == 0
        assert result.total_wasted_pps == 0

    def test_throughput_bounded_by_bottleneck(self):
        """No system variant can beat the chain's arithmetic capacity."""
        for features in ("Default", "NFVnice"):
            scenario = Scenario(scheduler="BATCH", features=features)
            build_linear_chain(scenario, (120, 270, 550), core=0)
            scenario.add_flow("f", "chain", line_rate_fraction=1.0)
            result = scenario.run(0.3)
            total_cost = sum(
                nf.cost_model.mean_cycles for nf in scenario.manager.nfs)
            ideal_pps = scenario.config.cpu_freq_hz / total_cost
            assert result.total_throughput_pps <= ideal_pps * 1.02

    def test_nfvnice_near_ideal_on_shared_core(self):
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        build_linear_chain(scenario, (120, 270, 550), core=0)
        scenario.add_flow("f", "chain", line_rate_fraction=1.0)
        result = scenario.run(0.5)
        total_cost = sum(
            nf.cost_model.mean_cycles for nf in scenario.manager.nfs)
        ideal_pps = scenario.config.cpu_freq_hz / total_cost
        assert result.total_throughput_pps >= 0.85 * ideal_pps

    def test_deterministic_across_runs(self):
        """Same seed, same configuration: bit-identical results."""
        def run():
            scenario = Scenario(scheduler="NORMAL", features="NFVnice",
                                seed=11)
            build_linear_chain(scenario, (120, 550), core=0)
            scenario.add_flow("f", "chain", line_rate_fraction=1.0)
            return scenario.run(0.2)

        r1, r2 = run(), run()
        assert r1.total_throughput_pps == r2.total_throughput_pps
        assert r1.total_wasted_pps == r2.total_wasted_pps
        assert r1.nf("nf1").nvcswch_per_s == r2.nf("nf1").nvcswch_per_s


class TestHeadlineClaims:
    """The paper's top-line results, asserted as shapes."""

    def test_nfvnice_eliminates_wasted_work(self):
        """Table 3: drops of processed packets fall by >=100x."""
        results = {}
        for features in ("Default", "NFVnice"):
            scenario = Scenario(scheduler="BATCH", features=features)
            build_linear_chain(scenario, (120, 270, 550), core=0)
            scenario.add_flow("f", "chain", line_rate_fraction=1.0)
            results[features] = scenario.run(0.5)
        default_waste = results["Default"].total_wasted_pps
        nfvnice_waste = results["NFVnice"].total_wasted_pps
        assert default_waste > 1e6
        assert nfvnice_waste < default_waste / 100

    def test_nfvnice_improves_throughput_all_schedulers(self):
        """Figure 7: NFVnice >= Default for every scheduler."""
        for sched in ("NORMAL", "BATCH", "RR_1MS", "RR_100MS"):
            tput = {}
            for features in ("Default", "NFVnice"):
                scenario = Scenario(scheduler=sched, features=features)
                build_linear_chain(scenario, (120, 270, 550), core=0)
                scenario.add_flow("f", "chain", line_rate_fraction=1.0)
                tput[features] = scenario.run(0.4).total_throughput_pps
            assert tput["NFVnice"] >= tput["Default"]

    def test_rr100_hog_collapse_and_rescue(self):
        """§4.3.2: heavy-upstream chain under RR(100 ms) collapses below
        40 Kpps; NFVnice restores Mpps-scale throughput."""
        tput = {}
        for features in ("Default", "NFVnice"):
            scenario = Scenario(scheduler="RR_100MS", features=features)
            build_linear_chain(scenario, (550, 270, 120), core=0)
            scenario.add_flow("f", "chain", line_rate_fraction=1.0)
            tput[features] = scenario.run(0.5).total_throughput_pps
        assert tput["Default"] < 60_000
        assert tput["NFVnice"] > 1e6

    def test_rate_cost_fair_shares_on_shared_core(self):
        """§4.2.1/Table 4 direction: with NFVnice, runtime is apportioned
        cost-proportionally (NF1 least, NF3 most)."""
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        build_linear_chain(scenario, (120, 270, 550), core=0)
        scenario.add_flow("f", "chain", line_rate_fraction=1.0)
        result = scenario.run(0.5)
        runtimes = [result.nf(f"nf{i}").runtime_s for i in (1, 2, 3)]
        assert runtimes[0] < runtimes[1] < runtimes[2]

    def test_multicore_cpu_savings_at_equal_throughput(self):
        """Table 5: same aggregate throughput, far less upstream CPU."""
        results = {}
        for features in ("Default", "NFVnice"):
            scenario = Scenario(scheduler="NORMAL", features=features)
            build_linear_chain(scenario, (550, 2200, 4500), core=(0, 1, 2))
            scenario.add_flow("f", "chain", line_rate_fraction=1.0)
            results[features] = scenario.run(0.5)
        d, n = results["Default"], results["NFVnice"]
        assert n.total_throughput_pps == pytest.approx(
            d.total_throughput_pps, rel=0.1)
        assert n.core_utilization[0] < 0.5 * d.core_utilization[0]
        assert n.core_utilization[1] < 0.9 * d.core_utilization[1]
