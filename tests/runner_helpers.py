"""Module-level callables for campaign-runner tests.

Worker processes import tasks by (module, fn) name, so test doubles for
crash/timeout/flaky behaviour must live in an importable module rather
than as closures inside a test.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path


def ok_text(duration_s: float = 0.0) -> str:
    return f"artifact for {duration_s}"


def boom(duration_s: float = 0.0) -> str:
    raise RuntimeError("deliberate task failure")


def hard_crash(duration_s: float = 0.0) -> str:
    """Die without a traceback or a result file — a segfaulting worker."""
    os.kill(os.getpid(), signal.SIGKILL)
    return "unreachable"  # pragma: no cover


def sleepy(duration_s: float = 0.0, sleep_s: float = 30.0) -> str:
    time.sleep(sleep_s)
    return "finally awake"


def publish_then_hang(spec: dict, out_path: str) -> None:
    """``child_entry`` double: publish the result, then refuse to exit.

    Stands in for a worker whose task finishes right at the timeout
    boundary — the payload is on disk but the process is still alive when
    the parent's deadline check fires.
    """
    from repro.runner.worker import child_entry

    child_entry(spec, out_path)
    time.sleep(30.0)


def flaky(marker_path: str = "", duration_s: float = 0.0) -> str:
    """Fail on the first attempt, succeed on the retry.

    The first call creates ``marker_path`` and raises; the retry sees the
    marker and succeeds — exercising retry-once semantics end to end.
    """
    marker = Path(marker_path)
    if not marker.exists():
        marker.write_text("attempt 1 failed")
        raise RuntimeError("flaky first attempt")
    return "recovered on retry"
