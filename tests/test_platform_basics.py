"""Tests for packets, chains, flow table, NIC and config."""

import dataclasses

import pytest

from repro.nfs.cost_models import FixedCost
from repro.core.nf import NFProcess
from repro.platform.chain import ServiceChain
from repro.platform.config import PlatformConfig, default_platform_config
from repro.platform.flow_table import FlowTable
from repro.platform.nic import NIC, WIRE_OVERHEAD_BYTES, line_rate_pps
from repro.platform.packet import Flow, PacketSegment


def make_nf(name, config):
    return NFProcess(name, FixedCost(100), config=config)


class TestPacketSegment:
    def test_split(self):
        seg = PacketSegment(Flow("f"), 10, enqueue_ns=5)
        head = seg.split(4)
        assert head.count == 4 and seg.count == 6
        assert head.enqueue_ns == seg.enqueue_ns == 5
        assert head.flow is seg.flow

    def test_split_bounds(self):
        seg = PacketSegment(Flow("f"), 10)
        with pytest.raises(ValueError):
            seg.split(0)
        with pytest.raises(ValueError):
            seg.split(10)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            PacketSegment(Flow("f"), 0)

    def test_flow_validation(self):
        with pytest.raises(ValueError):
            Flow("f", pkt_size=0)

    def test_tcp_flow_is_responsive(self):
        assert Flow("f", protocol="tcp").responsive
        assert not Flow("f", protocol="udp").responsive

    def test_flow_stats_lost(self):
        f = Flow("f")
        f.stats.entry_discards = 3
        f.stats.queue_drops = 4
        assert f.stats.lost == 7


class TestServiceChain:
    def test_positions_and_navigation(self, config):
        nfs = [make_nf(f"nf{i}", config) for i in (1, 2, 3)]
        chain = ServiceChain("c", nfs)
        assert chain.position_of(nfs[0]) == 0
        assert chain.next_nf(nfs[0]) is nfs[1]
        assert chain.next_nf(nfs[2]) is None
        assert chain.upstream_of(nfs[2]) == nfs[:2]
        assert chain.first() is nfs[0] and chain.last() is nfs[2]
        assert len(chain) == 3

    def test_nf_learns_membership(self, config):
        nfs = [make_nf(f"nf{i}", config) for i in (1, 2)]
        chain = ServiceChain("c", nfs)
        assert nfs[1].position_in(chain) == 1
        assert chain in nfs[0].chains

    def test_shared_nf_across_chains(self, config):
        """Figure 8: the same instance at different positions."""
        shared = make_nf("shared", config)
        a = make_nf("a", config)
        b = make_nf("b", config)
        c1 = ServiceChain("c1", [shared, a])
        c2 = ServiceChain("c2", [b, shared])
        assert shared.position_in(c1) == 0
        assert shared.position_in(c2) == 1
        assert len(shared.chains) == 2

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ServiceChain("c", [])


class TestFlowTable:
    def test_install_and_lookup(self, config):
        table = FlowTable()
        chain = ServiceChain("c", [make_nf("nf", config)])
        f = Flow("f")
        table.install(f, chain)
        assert table.lookup(f) is chain
        assert f.chain is chain
        assert f in table
        assert len(table) == 1

    def test_miss(self):
        table = FlowTable()
        assert table.lookup(Flow("ghost")) is None
        assert table.misses == 1

    def test_remove(self, config):
        table = FlowTable()
        chain = ServiceChain("c", [make_nf("nf", config)])
        f = Flow("f")
        table.install(f, chain)
        table.remove(f)
        assert table.lookup(f) is None
        assert f.chain is None

    def test_reinstall_replaces(self, config):
        table = FlowTable()
        c1 = ServiceChain("c1", [make_nf("nf1", config)])
        c2 = ServiceChain("c2", [make_nf("nf2", config)])
        f = Flow("f")
        table.install(f, c1)
        table.install(f, c2)
        assert table.lookup(f) is c2


class TestNIC:
    def test_line_rate_64b(self):
        # The canonical 14.88 Mpps of 64-byte frames at 10 GbE.
        assert line_rate_pps(64) == pytest.approx(14.88e6, rel=0.001)

    def test_line_rate_1500b(self):
        assert line_rate_pps(1500) == pytest.approx(
            10e9 / ((1500 + WIRE_OVERHEAD_BYTES) * 8))

    def test_invalid_pkt_size(self):
        with pytest.raises(ValueError):
            line_rate_pps(0)

    def test_receive_and_drop(self):
        nic = NIC(rx_capacity=100)
        f = Flow("f")
        assert nic.receive(f, 80, 0) == 80
        assert nic.receive(f, 80, 1) == 20
        assert nic.rx_dropped == 60

    def test_transmit_counters(self):
        nic = NIC()
        nic.transmit(PacketSegment(Flow("f", pkt_size=100), 7))
        assert nic.tx_packets == 7
        assert nic.tx_bytes == 700


class TestConfig:
    def test_paper_defaults(self):
        cfg = PlatformConfig()
        assert cfg.ring_capacity == 4096
        assert cfg.high_watermark == 0.80
        assert cfg.nf_batch_size == 32
        assert cfg.monitor_period_ns == 1_000_000       # 1000 Hz
        assert cfg.weight_update_ns == 10_000_000       # 10 ms
        assert cfg.enable_backpressure and cfg.enable_cgroups

    def test_default_platform_has_features_off(self):
        cfg = default_platform_config()
        assert not cfg.enable_backpressure
        assert not cfg.enable_cgroups
        assert not cfg.enable_ecn

    def test_with_features(self):
        cfg = PlatformConfig().with_features(cgroups=True, backpressure=False)
        assert cfg.enable_cgroups and not cfg.enable_backpressure
        assert not cfg.enable_relinquish  # relinquish rides on backpressure

    def test_overrides(self):
        cfg = default_platform_config(ring_capacity=128)
        assert cfg.ring_capacity == 128
