"""Tests for the backpressure state machine and chain throttling."""

import pytest

from repro.core.backpressure import BackpressureController, BackpressureState
from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.chain import ServiceChain
from repro.platform.config import PlatformConfig
from repro.platform.packet import Flow
from repro.sim.clock import USEC


@pytest.fixture
def bp_config():
    return PlatformConfig(
        ring_capacity=100,
        high_watermark=0.8,
        low_watermark=0.6,
        queuing_time_threshold_ns=100 * USEC,
        nf_overhead_cycles=0.0,
    )


def make_chain(bp_config, n=3, name="chain"):
    nfs = [NFProcess(f"{name}-nf{i}", FixedCost(100), config=bp_config)
           for i in range(n)]
    chain = ServiceChain(name, nfs)
    return chain, nfs


def fill(nf, count, now=0, chain=None):
    f = Flow(f"fill-{nf.name}-{now}")
    f.chain = chain
    nf.rx_ring.enqueue(f, count, now)
    return f


class TestStateMachine:
    def test_initial_state_off(self, bp_config):
        bp = BackpressureController(bp_config)
        chain, nfs = make_chain(bp_config)
        assert bp.state_of(nfs[1]) is BackpressureState.OFF

    def test_mark_overloaded_enters_watch(self, bp_config):
        bp = BackpressureController(bp_config)
        chain, nfs = make_chain(bp_config)
        bp.mark_overloaded(nfs[1])
        assert bp.state_of(nfs[1]) is BackpressureState.WATCH
        assert not chain.throttled  # watch alone does not throttle

    def test_throttle_requires_queuing_time_gate(self, bp_config):
        """Above the high watermark but young head-of-queue: a short burst
        that should be forgiven (§3.5 hysteresis)."""
        bp = BackpressureController(bp_config)
        chain, nfs = make_chain(bp_config)
        fill(nfs[1], 90, now=0, chain=chain)
        bp.mark_overloaded(nfs[1])
        bp.evaluate(now_ns=50 * USEC)  # head wait 50us < 100us threshold
        assert not chain.throttled
        bp.evaluate(now_ns=200 * USEC)
        assert chain.throttled
        assert chain.throttle_cause is nfs[1]

    def test_clear_on_low_watermark(self, bp_config):
        bp = BackpressureController(bp_config)
        chain, nfs = make_chain(bp_config)
        fill(nfs[1], 90, chain=chain)
        bp.mark_overloaded(nfs[1])
        bp.evaluate(200 * USEC)
        assert chain.throttled
        nfs[1].rx_ring.dequeue(40)  # 50 left, below low (60)
        bp.evaluate(300 * USEC)
        assert not chain.throttled
        assert bp.state_of(nfs[1]) is BackpressureState.OFF

    def test_hysteresis_band_keeps_throttle(self, bp_config):
        """Between low and high watermarks the throttle holds (Figure 4)."""
        bp = BackpressureController(bp_config)
        chain, nfs = make_chain(bp_config)
        fill(nfs[1], 90, chain=chain)
        bp.mark_overloaded(nfs[1])
        bp.evaluate(200 * USEC)
        nfs[1].rx_ring.dequeue(20)  # 70 left: between 60 and 80
        bp.evaluate(300 * USEC)
        assert chain.throttled

    def test_watch_clears_without_throttle_if_drained(self, bp_config):
        bp = BackpressureController(bp_config)
        chain, nfs = make_chain(bp_config)
        fill(nfs[1], 90, chain=chain)
        bp.mark_overloaded(nfs[1])
        nfs[1].rx_ring.dequeue(80)
        bp.evaluate(200 * USEC)
        assert bp.state_of(nfs[1]) is BackpressureState.OFF

    def test_entry_nf_does_not_throttle_chain(self, bp_config):
        """Congestion at the chain's first NF wastes nothing upstream —
        selective throttling skips position 0."""
        bp = BackpressureController(bp_config)
        chain, nfs = make_chain(bp_config)
        fill(nfs[0], 90, chain=chain)
        bp.mark_overloaded(nfs[0])
        bp.evaluate(200 * USEC)
        assert not chain.throttled

    def test_counters(self, bp_config):
        bp = BackpressureController(bp_config)
        chain, nfs = make_chain(bp_config)
        fill(nfs[1], 90, chain=chain)
        bp.mark_overloaded(nfs[1])
        bp.evaluate(200 * USEC)
        nfs[1].rx_ring.dequeue(90)
        bp.evaluate(300 * USEC)
        assert bp.throttle_events == 1
        assert bp.clear_events == 1


class TestSharedNFSelectivity:
    def test_only_chains_through_congested_nf_throttled(self, bp_config):
        """Figure 5: chain B is not affected."""
        bp = BackpressureController(bp_config)
        nf_a = NFProcess("a", FixedCost(100), config=bp_config)
        nf_b = NFProcess("b", FixedCost(100), config=bp_config)
        nf_c = NFProcess("c", FixedCost(100), config=bp_config)
        chain_ab = ServiceChain("AB", [nf_a, nf_b])
        chain_ac = ServiceChain("AC", [nf_a, nf_c])
        fill(nf_b, 90, chain=chain_ab)
        bp.mark_overloaded(nf_b)
        bp.evaluate(200 * USEC)
        assert chain_ab.throttled
        assert not chain_ac.throttled
        # Shared upstream nf_a serves an un-throttled chain: no relinquish.
        assert not nf_a.relinquish

    def test_relinquish_when_all_chains_throttled(self, bp_config):
        bp = BackpressureController(bp_config)
        chain, nfs = make_chain(bp_config)
        fill(nfs[2], 90, chain=chain)
        bp.mark_overloaded(nfs[2])
        bp.evaluate(200 * USEC)
        assert chain.throttled
        assert nfs[0].relinquish and nfs[1].relinquish
        # And cleared once the congestion drains.
        nfs[2].rx_ring.dequeue(90)
        bp.evaluate(300 * USEC)
        assert not nfs[0].relinquish and not nfs[1].relinquish

    def test_relinquish_disabled_by_config(self, bp_config):
        import dataclasses

        cfg = dataclasses.replace(bp_config, enable_relinquish=False)
        bp = BackpressureController(cfg)
        chain, nfs = make_chain(cfg)
        fill(nfs[2], 90, chain=chain)
        bp.mark_overloaded(nfs[2])
        bp.evaluate(200 * USEC)
        assert chain.throttled
        assert not nfs[0].relinquish

    def test_chain_agnostic_ablation_collateral_throttle(self, bp_config):
        """Without selectivity, a sibling chain sharing only an upstream
        NF gets throttled too (the damage Figure 5 avoids)."""
        import dataclasses

        cfg = dataclasses.replace(bp_config, selective_chain_throttle=False)
        bp = BackpressureController(cfg)
        nf_a = NFProcess("a", FixedCost(100), config=cfg)
        nf_b = NFProcess("b", FixedCost(100), config=cfg)
        nf_c = NFProcess("c", FixedCost(100), config=cfg)
        chain_ab = ServiceChain("AB", [nf_a, nf_b])
        chain_ac = ServiceChain("AC", [nf_a, nf_c])
        fill(nf_b, 90, chain=chain_ab)
        bp.mark_overloaded(nf_b)
        bp.evaluate(200 * USEC)
        assert chain_ab.throttled
        assert chain_ac.throttled  # innocent sibling hit as well

    def test_two_congested_nfs_reclaim(self, bp_config):
        """When one congested NF clears, a chain is re-claimed by another
        still-congested NF instead of silently un-throttling."""
        bp = BackpressureController(bp_config)
        chain, nfs = make_chain(bp_config, n=3)
        fill(nfs[1], 90, chain=chain)
        fill(nfs[2], 90, chain=chain)
        bp.mark_overloaded(nfs[1])
        bp.mark_overloaded(nfs[2])
        bp.evaluate(200 * USEC)
        assert chain.throttled
        # nfs[1] (or whichever claimed it) drains; the other still full.
        cause = chain.throttle_cause
        cause.rx_ring.dequeue(90)
        bp.evaluate(400 * USEC)
        assert chain.throttled
        assert chain.throttle_cause is not cause

    def test_throttled_chains_reporting(self, bp_config):
        bp = BackpressureController(bp_config)
        chain, nfs = make_chain(bp_config)
        fill(nfs[1], 90, chain=chain)
        bp.mark_overloaded(nfs[1])
        bp.evaluate(200 * USEC)
        assert chain in bp.throttled_chains()
