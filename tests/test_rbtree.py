"""Unit and property tests for the CFS red-black tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.rbtree import BLACK, RED, RBTree


def check_rb_invariants(tree: RBTree) -> None:
    """Root black, no red-red edges, equal black heights, BST order,
    leftmost pointer correct."""

    def walk(node):
        if node is None:
            return 1, None, None
        if node.color is RED:
            assert node.parent is None or node.parent.color is BLACK, \
                "red node with red parent"
        lb, lmin, lmax = walk(node.left)
        rb, rmin, rmax = walk(node.right)
        assert lb == rb, "black-height mismatch"
        if lmax is not None:
            assert (lmax.key, lmax.seq) < (node.key, node.seq)
        if rmin is not None:
            assert (node.key, node.seq) < (rmin.key, rmin.seq)
        height = lb + (0 if node.color is RED else 1)
        return height, (lmin or node), (rmax or node)

    if tree.root is not None:
        assert tree.root.color is BLACK
        _, leftmost, _ = walk(tree.root)
        assert tree.min_node() is leftmost
    else:
        assert tree.min_node() is None


class TestBasics:
    def test_empty(self):
        tree = RBTree()
        assert len(tree) == 0
        assert tree.min_node() is None
        assert tree.min_key() is None
        assert tree.pop_min() is None

    def test_single_insert(self):
        tree = RBTree()
        tree.insert(5.0, "a")
        assert len(tree) == 1
        assert tree.min_key() == 5.0
        check_rb_invariants(tree)

    def test_pop_min_returns_smallest(self):
        tree = RBTree()
        for key in (5, 1, 9, 3, 7):
            tree.insert(key, key)
        assert tree.pop_min() == 1
        assert tree.pop_min() == 3
        assert len(tree) == 3
        check_rb_invariants(tree)

    def test_duplicate_keys_fifo(self):
        tree = RBTree()
        tree.insert(1.0, "first")
        tree.insert(1.0, "second")
        assert tree.pop_min() == "first"
        assert tree.pop_min() == "second"

    def test_remove_specific_node(self):
        tree = RBTree()
        nodes = {k: tree.insert(k, k) for k in (4, 2, 6, 1, 3, 5, 7)}
        tree.remove(nodes[4])
        assert len(tree) == 6
        assert [k for k, _ in tree.items()] == [1, 2, 3, 5, 6, 7]
        check_rb_invariants(tree)

    def test_remove_leftmost_updates_min(self):
        tree = RBTree()
        nodes = {k: tree.insert(k, k) for k in (3, 1, 2)}
        tree.remove(nodes[1])
        assert tree.min_key() == 2
        check_rb_invariants(tree)

    def test_items_in_order(self):
        tree = RBTree()
        for k in (9, 1, 8, 2, 7, 3):
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == [1, 2, 3, 7, 8, 9]

    def test_ascending_insertions(self):
        tree = RBTree()
        for k in range(100):
            tree.insert(k, k)
            check_rb_invariants(tree)
        assert len(tree) == 100

    def test_descending_insertions(self):
        tree = RBTree()
        for k in reversed(range(100)):
            tree.insert(k, k)
        check_rb_invariants(tree)
        assert tree.min_key() == 0


@given(st.lists(st.tuples(st.sampled_from(["ins", "del"]),
                          st.integers(0, 30)), max_size=120))
@settings(max_examples=150, deadline=None)
def test_random_operations_preserve_invariants(ops):
    """Any interleaving of inserts and deletes keeps RB properties and
    matches a sorted-list reference model."""
    tree = RBTree()
    nodes = []
    reference = []
    for op, key in ops:
        if op == "ins" or not nodes:
            node = tree.insert(key, key)
            nodes.append(node)
            reference.append(key)
        else:
            idx = key % len(nodes)
            node = nodes.pop(idx)
            tree.remove(node)
            reference.remove(node.key)
        assert len(tree) == len(reference)
        check_rb_invariants(tree)
        assert [k for k, _ in tree.items()] == sorted(reference)


@given(st.lists(st.tuples(st.sampled_from(["ins", "del", "upd"]),
                          st.integers(0, 30)), max_size=150))
@settings(max_examples=150, deadline=None)
def test_insert_remove_update_sequences_preserve_invariants(ops):
    """The CFS usage pattern: a task's key (vruntime) is *updated* by
    removing its node and reinserting under the new key.  Any interleaving
    of inserts, removes and updates must keep RB invariants, match a
    sorted reference model, and keep the leftmost pointer exact."""
    tree = RBTree()
    nodes = {}     # node -> current key (the tree node is the identity)
    next_id = 0
    for op, key in ops:
        if op == "ins" or not nodes:
            node = tree.insert(key, f"task{next_id}")
            next_id += 1
            nodes[node] = key
        elif op == "del":
            victim = sorted(nodes, key=lambda n: (nodes[n], n.seq))[
                key % len(nodes)]
            tree.remove(victim)
            del nodes[victim]
        else:  # upd: reinsert under a new key, keeping the payload
            victim = sorted(nodes, key=lambda n: (nodes[n], n.seq))[
                key % len(nodes)]
            payload = victim.value
            tree.remove(victim)
            del nodes[victim]
            node = tree.insert(key + 0.5, payload)  # vruntime advanced
            nodes[node] = key + 0.5
        assert len(tree) == len(nodes)
        check_rb_invariants(tree)
        assert [k for k, _ in tree.items()] == sorted(nodes.values())
        if nodes:
            assert tree.min_key() == min(nodes.values())


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          width=32), min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_pop_min_yields_sorted_sequence(keys):
    tree = RBTree()
    for k in keys:
        tree.insert(k, k)
    popped = []
    while len(tree):
        popped.append(tree.pop_min())
    assert popped == sorted(keys)
