"""Runtime invariant sanitizer: clean runs, injected corruption, digests.

A clean run under ``--sanitize`` must report nothing and digest
identically to an unsanitized run.  Each injection test corrupts one
counter after a plain run and asserts the matching check fires — proving
the sanitizer would have caught that violation class for real.
"""

from __future__ import annotations

import json

from repro.analysis.export import result_from_dict, result_to_dict
from repro.check.sanitizer import (
    Sanitizer,
    SanitizerViolation,
    activate_sanitizer,
    current_sanitizer,
    deactivate_sanitizer,
)
from repro.experiments.common import Scenario


def small_run(scheduler="NORMAL", seed=1, duration_s=0.02):
    scenario = Scenario(scheduler=scheduler, features="Default", seed=seed)
    scenario.add_nf("nf0", 120, core=0)
    scenario.add_nf("nf1", 270, core=0)
    scenario.add_chain("chain0", ["nf0", "nf1"])
    scenario.add_flow("flow0", "chain0", rate_pps=50_000.0)
    result = scenario.run(duration_s)
    return scenario, result


def checks_of(violations):
    return {v.check for v in violations}


# ----------------------------------------------------------------------
# Clean runs
# ----------------------------------------------------------------------
def test_clean_run_reports_zero_violations():
    sanitizer = Sanitizer(per_tick=True)
    activate_sanitizer(sanitizer)
    try:
        _scenario, result = small_run()
    finally:
        deactivate_sanitizer()
    assert result.sanitizer_violations == []
    assert sanitizer.violations == []
    assert sanitizer.runs == 1
    assert current_sanitizer() is None


def test_clean_run_all_schedulers():
    for scheduler in ("NORMAL", "BATCH", "RR_1MS", "COOP", "EDF",
                      "DEADLINE"):
        sanitizer = Sanitizer()
        activate_sanitizer(sanitizer)
        try:
            _scenario, result = small_run(scheduler=scheduler)
        finally:
            deactivate_sanitizer()
        assert result.sanitizer_violations == [], scheduler


def test_sanitized_run_digests_identically_to_plain_run():
    _s1, plain = small_run()
    activate_sanitizer(Sanitizer(per_tick=True))
    try:
        _s2, sanitized = small_run()
    finally:
        deactivate_sanitizer()
    assert json.dumps(result_to_dict(plain), sort_keys=True) \
        == json.dumps(result_to_dict(sanitized), sort_keys=True)


# ----------------------------------------------------------------------
# Injected corruption: each violation class must be detected
# ----------------------------------------------------------------------
def test_detects_time_accounting_drift():
    scenario, _result = small_run()
    scenario.manager.cores[0].stats.busy_ns += 1
    violations = Sanitizer().finish_run(scenario)
    assert "time-accounting" in checks_of(violations)
    assert any("lifetime" in v.message for v in violations)


def test_detects_float_typed_time_counter():
    scenario, _result = small_run()
    stats = scenario.manager.cores[0].stats
    stats.idle_ns = float(stats.idle_ns)
    violations = Sanitizer().finish_run(scenario)
    assert any(v.check == "time-accounting" and "not int" in v.message
               for v in violations)


def test_detects_packet_conservation_break():
    scenario, _result = small_run()
    scenario.generator.specs[0].flow.stats.offered += 1
    violations = Sanitizer().finish_run(scenario)
    assert "packet-conservation" in checks_of(violations)


def test_detects_ring_flow_identity_break():
    scenario, _result = small_run()
    scenario.manager.nfs[0].rx_ring.enqueued_total += 1
    violations = Sanitizer().finish_run(scenario)
    assert "ring-occupancy" in checks_of(violations)


def test_detects_drop_reason_sum_mismatch():
    scenario, _result = small_run()
    ring = scenario.manager.nfs[0].rx_ring
    ring.dropped_total += 1
    violations = Sanitizer().finish_run(scenario)
    assert any(v.check == "ring-occupancy"
               and "drops_by_reason" in v.message for v in violations)


def test_detects_negative_counter():
    scenario, _result = small_run()
    scenario.manager.nfs[0].processed_packets = -3
    violations = Sanitizer().finish_run(scenario)
    assert any(v.check == "non-negative" and "underflowed" in v.message
               for v in violations)


def test_detects_vruntime_regression():
    scenario, _result = small_run()
    sanitizer = Sanitizer()
    sanitizer.attach(scenario)
    sanitizer._min_vruntime_seen[0] = float("inf")
    violations = sanitizer.finish_run(scenario)
    assert "vruntime-monotonic" in checks_of(violations)


def test_detects_capacity_bound_violation():
    scenario, _result = small_run()
    scenario.manager.nfs[0].rx_ring.capacity = -1
    violations = Sanitizer().finish_run(scenario)
    assert any(v.check == "ring-occupancy" and "outside" in v.message
               for v in violations)


# ----------------------------------------------------------------------
# Multi-host scenarios: every check walks all hosts and the fabric
# ----------------------------------------------------------------------
def cluster_run(duration_s=0.02):
    from repro.cluster import ClusterScenario

    scenario = ClusterScenario(
        n_hosts=2, scheduler="NORMAL", features="NFVnice", seed=5)
    scenario.add_slo_class("gold", 500.0)
    scenario.set_chain("svc", (120.0, 270.0), slo_us=500.0,
                       placements=((0, 0), (1, 0)))
    scenario.add_flow("f0", rate_pps=100_000.0, slo_class="gold")
    scenario.add_flow("f1", rate_pps=100_000.0, slo_class="gold")
    result = scenario.run(duration_s)
    return scenario, result


def test_cluster_clean_run_reports_zero_violations():
    sanitizer = Sanitizer(per_tick=True)
    activate_sanitizer(sanitizer)
    try:
        _scenario, result = cluster_run()
    finally:
        deactivate_sanitizer()
    assert result.sanitizer_violations == []
    assert sanitizer.violations == []


def test_cluster_violations_name_the_host():
    scenario, _result = cluster_run()
    host = scenario.topology.hosts[1]
    host.manager.nfs[0].rx_ring.enqueued_total += 1
    violations = Sanitizer().finish_run(scenario)
    subjects = {v.subject for v in violations
                if v.check == "ring-occupancy"}
    assert subjects and all(s.startswith("ring:h1.") for s in subjects)


def test_cluster_conservation_includes_fabric_in_flight():
    scenario, _result = cluster_run()
    # Pretend a packet evaporated off a fabric link: conservation breaks.
    scenario.topology.links[0].in_flight += 1
    violations = Sanitizer().finish_run(scenario)
    assert "packet-conservation" in checks_of(violations)


def test_migrate_across_core_fail_is_sanitizer_clean():
    """Orchestrated migration onto a core a fault plan then kills: the
    warm restart must leave every invariant intact on all hosts."""
    from repro.faults.plan import FaultPlan, FaultSpec

    sanitizer = Sanitizer(per_tick=True)
    activate_sanitizer(sanitizer)
    try:
        scenario = Scenario(scheduler="NORMAL", features="NFVnice", seed=7)
        scenario.add_nf("nf0", 120, core=0)
        scenario.add_nf("nf1", 270, core=0)
        scenario.add_chain("chain0", ["nf0", "nf1"])
        scenario.add_flow("flow0", "chain0", rate_pps=50_000.0)
        scenario.attach_faults(FaultPlan(
            specs=[FaultSpec(kind="core_fail", target="2", at_s=0.010)],
            policy="restart-warm", detection_period_s=0.002,
            restart_delay_s=0.001))
        mgr = scenario.manager
        nf1 = mgr.nf_by_name("nf1")
        mgr.loop.call_at(5_000_000, lambda: mgr.migrate_nf(nf1, 2))
        result = scenario.run(0.05)
    finally:
        deactivate_sanitizer()
    assert result.sanitizer_violations == []
    assert not nf1.failed
    assert nf1.core is not None and not nf1.core.failed


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def test_violation_dict_roundtrip():
    v = SanitizerViolation("time-accounting", "core:0", "off by one", 123)
    assert SanitizerViolation.from_dict(v.to_dict()) == v
    assert "core:0" in v.render() and "t=123ns" in v.render()


def test_result_export_roundtrip_carries_violations():
    scenario, result = small_run()
    scenario.manager.cores[0].stats.busy_ns += 1
    result.sanitizer_violations = Sanitizer().finish_run(scenario)
    assert result.sanitizer_violations
    back = result_from_dict(result_to_dict(result))
    assert back.sanitizer_violations == result.sanitizer_violations


def test_sanitizer_accumulates_across_runs():
    sanitizer = Sanitizer()
    activate_sanitizer(sanitizer)
    try:
        _s1, r1 = small_run(seed=1)
        _s2, r2 = small_run(seed=2)
    finally:
        deactivate_sanitizer()
    assert sanitizer.runs == 2
    assert r1.sanitizer_violations == [] and r2.sanitizer_violations == []
