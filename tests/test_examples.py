"""Every example script must run end-to-end and produce its report.

The long-timeline isolation example is exercised through its experiment
module elsewhere; here it is importable but not executed.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "disk_logging_nf",
    "custom_callback_nf",
    "multicore_service_chains",
    "scheduler_trace",
    "declarative_topology",
    "cross_host_chain",
])
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out.strip()) > 0


def test_isolation_example_importable():
    module = load_example("tcp_udp_isolation")
    assert callable(module.main)


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES.glob("*.py")}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor
