"""Unit tests for the SCHED_RR model."""

import pytest

from repro.sched.base import CoreTask
from repro.sched.rr import RRScheduler
from repro.sim.clock import MSEC


def test_fifo_rotation():
    sched = RRScheduler(quantum_ns=MSEC)
    tasks = [CoreTask(f"t{i}") for i in range(3)]
    for t in tasks:
        sched.enqueue(t, 0, wakeup=True)
    order = [sched.pick_next(0).name for _ in range(3)]
    assert order == ["t0", "t1", "t2"]


def test_requeue_goes_to_tail():
    sched = RRScheduler()
    a, b = CoreTask("a"), CoreTask("b")
    sched.enqueue(a, 0, wakeup=True)
    sched.enqueue(b, 0, wakeup=True)
    first = sched.pick_next(0)
    sched.enqueue(first, 0, wakeup=False)
    assert sched.pick_next(0) is b
    assert sched.pick_next(0) is a


def test_fixed_quantum_ignores_weight():
    sched = RRScheduler(quantum_ns=100 * MSEC)
    light = CoreTask("l", weight=1)
    heavy = CoreTask("h", weight=100000)
    assert sched.time_slice(light, 0) == sched.time_slice(heavy, 0) \
        == 100 * MSEC


def test_charge_keeps_no_vruntime():
    sched = RRScheduler()
    t = CoreTask("t")
    sched.charge(t, 12345.0)
    assert t.vruntime == 0.0


def test_never_preempts_on_wake():
    sched = RRScheduler()
    assert not sched.preempts_on_wake(CoreTask("a"), CoreTask("b"), 1e9)


def test_dequeue():
    sched = RRScheduler()
    a, b = CoreTask("a"), CoreTask("b")
    sched.enqueue(a, 0, wakeup=True)
    sched.enqueue(b, 0, wakeup=True)
    sched.dequeue(a, 0)
    assert sched.nr_ready == 1
    assert sched.pick_next(0) is b


def test_double_enqueue_rejected():
    sched = RRScheduler()
    a = CoreTask("a")
    sched.enqueue(a, 0, wakeup=True)
    with pytest.raises(RuntimeError):
        sched.enqueue(a, 0, wakeup=True)


def test_invalid_quantum():
    with pytest.raises(ValueError):
        RRScheduler(quantum_ns=0)


def test_label():
    assert RRScheduler(quantum_ns=MSEC).name == "RR(1ms)"
    assert RRScheduler(quantum_ns=100 * MSEC).name == "RR(100ms)"


def test_factory_names():
    from repro.sched import make_scheduler

    assert make_scheduler("rr_1ms").quantum_ns == MSEC
    assert make_scheduler("RR_100MS").quantum_ns == 100 * MSEC
    assert make_scheduler("NORMAL").name == "NORMAL"
    assert make_scheduler("batch").name == "BATCH"
    with pytest.raises(ValueError):
        make_scheduler("FIFO")
