"""System-level fuzzing: random topologies must preserve global invariants.

Hypothesis generates topologies (NF counts/costs, shared or per-flow
chains, core placements, feature sets, schedulers, loads) and the platform
must always satisfy: packet conservation, capacity bounds, non-negative
accounting, and state-machine consistency — the properties that hold for
*any* NFV workload, not just the paper's.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import Scenario
from repro.sched.base import TaskState
from repro.sim.clock import SEC

COSTS = [120, 270, 550, 1200, 2200, 4500]
SCHEDULERS = ["NORMAL", "BATCH", "RR_1MS", "RR_100MS", "COOP"]
FEATURES = ["Default", "CGroup", "OnlyBKPR", "NFVnice"]


@st.composite
def topologies(draw):
    n_nfs = draw(st.integers(1, 5))
    nfs = [
        (f"nf{i}", draw(st.sampled_from(COSTS)), draw(st.integers(0, 2)))
        for i in range(n_nfs)
    ]
    n_chains = draw(st.integers(1, 3))
    chains = []
    for c in range(n_chains):
        size = draw(st.integers(1, n_nfs))
        member_idx = draw(
            st.permutations(range(n_nfs)).map(lambda p: list(p)[:size]))
        chains.append([f"nf{i}" for i in member_idx])
    flows = []
    for c in range(n_chains):
        rate = draw(st.floats(min_value=1e4, max_value=8e6))
        flows.append((f"flow{c}", f"chain{c}", rate))
    return {
        "scheduler": draw(st.sampled_from(SCHEDULERS)),
        "features": draw(st.sampled_from(FEATURES)),
        "nfs": nfs,
        "chains": chains,
        "flows": flows,
        "seed": draw(st.integers(0, 2 ** 16)),
    }


def build_and_run(spec, duration_s=0.05):
    scenario = Scenario(scheduler=spec["scheduler"],
                        features=spec["features"],
                        seed=spec["seed"],
                        num_rx_threads=2)
    for name, cost, core in spec["nfs"]:
        scenario.add_nf(name, cost, core=core)
    for i, members in enumerate(spec["chains"]):
        scenario.add_chain(f"chain{i}", members)
    flows = [
        scenario.add_flow(fid, chain, rate_pps=rate)
        for fid, chain, rate in spec["flows"]
    ]
    result = scenario.run(duration_s)
    return scenario, flows, result


@given(spec=topologies())
@settings(max_examples=40, deadline=None)
def test_packet_conservation_any_topology(spec):
    scenario, flows, _result = build_and_run(spec)
    mgr = scenario.manager
    offered = sum(f.stats.offered for f in flows)
    delivered = sum(f.stats.delivered for f in flows)
    entry = sum(f.stats.entry_discards for f in flows)
    drops = sum(f.stats.queue_drops for f in flows)
    in_flight = len(mgr.nic.rx_ring) + sum(
        len(nf.rx_ring) + len(nf.tx_ring) for nf in mgr.nfs)
    assert offered == delivered + entry + drops + in_flight


@given(spec=topologies())
@settings(max_examples=25, deadline=None)
def test_capacity_and_accounting_bounds(spec):
    scenario, _flows, result = build_and_run(spec)
    duration_ns = result.duration_s * SEC
    for core in scenario.manager.cores.values():
        busy = core.stats.busy_ns + core.stats.overhead_ns + core.stats.idle_ns
        assert busy <= duration_ns * 1.001
        assert core.stats.busy_ns >= 0
        assert core.stats.idle_ns >= 0
    for nf in scenario.manager.nfs:
        assert nf.stats.runtime_ns <= duration_ns * 1.001
        assert nf.processed_packets >= 0
        # An NF can never emit more than it processed.
        assert nf.tx_ring.enqueued_total <= nf.processed_packets
        assert nf.state in (TaskState.BLOCKED, TaskState.READY,
                            TaskState.RUNNING)


@given(spec=topologies())
@settings(max_examples=25, deadline=None)
def test_per_chain_processing_consistency(spec):
    """Each NF's per-chain counters sum to its processed total, and chain
    completions never exceed what the chain's last NF processed for it."""
    scenario, _flows, _result = build_and_run(spec)
    for nf in scenario.manager.nfs:
        assert sum(nf.processed_by_chain.values()) == nf.processed_packets
    for chain in scenario.manager.chains.values():
        last = chain.last()
        assert chain.completed <= \
            last.processed_by_chain.get(chain.name, 0)


@given(spec=topologies(), duration=st.sampled_from([0.02, 0.05]))
@settings(max_examples=15, deadline=None)
def test_determinism_any_topology(spec, duration):
    _s1, _f1, r1 = build_and_run(spec, duration)
    _s2, _f2, r2 = build_and_run(spec, duration)
    assert r1.total_throughput_pps == r2.total_throughput_pps
    assert r1.total_wasted_pps == r2.total_wasted_pps
    for name in r1.nfs:
        assert r1.nf(name).processed == r2.nf(name).processed


def test_accounting_identity_exact_on_spurious_wake_case():
    """Regression: the exact per-core accounting partition on the case
    that used to overshoot the horizon (a spurious wake — dispatch of a
    task whose estimate_run_ns is 0 — charged ctx_switch_ns with zero
    elapsed wall time).  busy + overhead + idle must equal the core's
    lifetime *exactly*, in integer nanoseconds."""
    spec = {
        "scheduler": "NORMAL",
        "features": "Default",
        "nfs": [(f"nf{i}", 120, 0) for i in range(4)],
        "chains": [["nf0"], ["nf1", "nf2"]],
        "flows": [("flow0", "chain0", 263084.0), ("flow1", "chain1", 10000.0)],
        "seed": 0,
    }
    scenario, _flows, _result = build_and_run(spec)
    for core in scenario.manager.cores.values():
        s = core.stats
        assert isinstance(s.busy_ns, int)
        assert isinstance(s.overhead_ns, int)
        assert isinstance(s.idle_ns, int)
        lifetime = scenario.manager.loop.now - core.epoch_ns
        assert s.busy_ns + s.overhead_ns + s.idle_ns == lifetime
