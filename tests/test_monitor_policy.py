"""Tests for the cgroup share policy and the Monitor thread."""

import pytest

from repro.core.cgroup_policy import BASE_SHARES, compute_shares
from repro.core.monitor import MonitorThread
from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.packet import Flow
from repro.sched import Core, make_scheduler
from repro.sched.cgroups import CgroupController
from repro.sim.clock import MSEC, SEC


class TestComputeShares:
    def test_rate_proportional(self):
        """Same cost, double arrival rate -> double the shares (§2.1)."""
        shares = compute_shares([("a", 2.0, 1.0), ("b", 1.0, 1.0)])
        assert shares["a"] == pytest.approx(2 * shares["b"], rel=0.01)

    def test_cost_proportional(self):
        """Same arrival rate, double cost -> double the shares."""
        shares = compute_shares([("a", 0.5, 1.0), ("b", 1.0, 1.0)])
        assert shares["b"] == pytest.approx(2 * shares["a"], rel=0.01)

    def test_priority_scales(self):
        shares = compute_shares([("a", 1.0, 2.0), ("b", 1.0, 1.0)])
        assert shares["a"] == pytest.approx(2 * shares["b"], rel=0.01)

    def test_average_stays_at_base(self):
        shares = compute_shares([("a", 1.0, 1.0), ("b", 3.0, 1.0)])
        assert sum(shares.values()) == pytest.approx(2 * BASE_SHARES, abs=2)

    def test_zero_total_load_gives_equal_base(self):
        shares = compute_shares([("a", 0.0, 1.0), ("b", 0.0, 1.0)])
        assert shares == {"a": BASE_SHARES, "b": BASE_SHARES}

    def test_zero_load_nf_keeps_minimal_share(self):
        """Even a momentarily idle NF can make progress (§2.1)."""
        shares = compute_shares([("a", 0.0, 1.0), ("b", 10.0, 1.0)])
        assert shares["a"] >= 1

    def test_empty(self):
        assert compute_shares([]) == {}

    def test_paper_diversity_example(self):
        """§4.3.6: costs 1:2:5:20:40:60 at equal arrival rate — the
        lightest NF gets ~1%, the heaviest ~47% of the CPU."""
        ratios = (1, 2, 5, 20, 40, 60)
        shares = compute_shares([(f"nf{i}", r, 1.0)
                                 for i, r in enumerate(ratios)])
        total = sum(shares.values())
        assert shares["nf0"] / total == pytest.approx(1 / 128, rel=0.1)
        assert shares["nf5"] / total == pytest.approx(60 / 128, rel=0.05)


class TestMonitorThread:
    def _setup(self, loop, config, costs=(500, 1500)):
        core = Core(loop, make_scheduler("NORMAL"))
        nfs = []
        for i, cost in enumerate(costs, start=1):
            nf = NFProcess(f"nf{i}", FixedCost(cost), config=config)
            core.add_task(nf)
            nfs.append(nf)
        cgroups = CgroupController()
        monitor = MonitorThread(loop, nfs, cgroups, config)
        return core, nfs, cgroups, monitor

    def test_arrival_rate_ewma_converges(self, loop, config):
        core, nfs, cgroups, monitor = self._setup(loop, config)
        monitor.start()
        from repro.sim.process import PeriodicProcess

        # 1000 packets per ms into nf1 = 1 Mpps.
        feeder = PeriodicProcess(
            loop, MSEC, lambda: nfs[0].rx_ring.enqueue(
                Flow("f"), 1000, loop.now) and None)

        def feed():
            nfs[0].rx_ring.enqueue(Flow("f"), 1000, loop.now)
            nfs[0].rx_ring.dequeue(1000)  # keep the ring from saturating

        feeder.callback = feed
        feeder.start()
        loop.run_until(200 * MSEC)
        assert monitor.arrival_rate_pps(nfs[0]) == pytest.approx(
            1.0e6, rel=0.05)
        assert monitor.arrival_rate_pps(nfs[1]) == 0.0

    def test_load_is_rate_times_service(self, loop, config):
        core, nfs, cgroups, monitor = self._setup(loop, config,
                                                  costs=(2600,))
        monitor._arrival_ewma_pps[nfs[0].name] = 1.0e6
        # 2600 cycles at 2.6 GHz = 1 us; 1 Mpps * 1 us = load 1.0.
        assert monitor.load_of(nfs[0], 0) == pytest.approx(1.0, rel=0.01)

    def test_weights_written_on_update_period(self, loop, config):
        core, nfs, cgroups, monitor = self._setup(loop, config)
        monitor._arrival_ewma_pps[nfs[0].name] = 1.0e6
        monitor._arrival_ewma_pps[nfs[1].name] = 1.0e6
        monitor.start()
        loop.run_until(25 * MSEC)
        assert cgroups.writes >= 2
        # load ratio 500:1500 -> weight ratio 1:3.
        assert nfs[1].weight == pytest.approx(3 * nfs[0].weight, rel=0.05)

    def test_share_series_recorded(self, loop, config):
        core, nfs, cgroups, monitor = self._setup(loop, config)
        monitor.record_series = True
        monitor._arrival_ewma_pps[nfs[0].name] = 1.0e6
        monitor._arrival_ewma_pps[nfs[1].name] = 1.0e6
        monitor.start()
        loop.run_until(25 * MSEC)
        assert len(monitor.share_series["nf1"]) >= 1


class TestDynamicMembership:
    """NFs may register/retire after the Monitor is constructed (restart
    replicas, scale-out instances) without disturbing the estimators."""

    def _setup(self, loop, config):
        return TestMonitorThread._setup(TestMonitorThread(), loop, config)

    def test_late_nf_gets_estimated(self, loop, config):
        core, nfs, cgroups, monitor = self._setup(loop, config)
        monitor.start()
        late = NFProcess("late", FixedCost(500), config=config)
        core.add_task(late)
        monitor.add_nf(late)
        monitor.add_nf(late)                     # idempotent
        assert monitor.nfs.count(late) == 1

        def feed():
            late.rx_ring.enqueue(Flow("f"), 1000, loop.now)
            late.rx_ring.dequeue(1000)

        from repro.sim.process import PeriodicProcess

        feeder = PeriodicProcess(loop, MSEC, feed)
        feeder.start()
        loop.run_until(200 * MSEC)
        assert monitor.arrival_rate_pps(late) == pytest.approx(
            1.0e6, rel=0.05)

    def test_removed_nf_stops_counting(self, loop, config):
        core, nfs, cgroups, monitor = self._setup(loop, config)
        monitor.start()
        monitor.remove_nf(nfs[1])
        monitor.remove_nf(nfs[1])                # absent: no-op
        loop.run_until(25 * MSEC)
        assert nfs[1] not in monitor.nfs

    def test_watchdog_rides_monitor_tick(self, loop, config):
        core, nfs, cgroups, monitor = self._setup(loop, config)
        from repro.faults.watchdog import Watchdog

        wd = Watchdog(loop, 2 * MSEC)
        for nf in nfs:
            wd.register(nf)
        monitor.watchdog = wd
        monitor.start()
        loop.run_until(10 * MSEC)
        assert wd.checks >= 9
