"""Tests for multi-host service chains and cross-host ECN."""

import pytest

from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.manager import NFManager
from repro.platform.multihost import HostLink, connect_hosts
from repro.platform.packet import Flow
from repro.sim.clock import MSEC, SEC, USEC
from repro.sim.engine import EventLoop


def two_hosts(loop, config, cost_a=200, cost_b=200):
    host_a = NFManager(loop, scheduler="BATCH", config=config)
    host_b = NFManager(loop, scheduler="BATCH", config=config)
    nf_a = NFProcess("nf-a", FixedCost(cost_a), config=config)
    nf_b = NFProcess("nf-b", FixedCost(cost_b), config=config)
    host_a.add_nf(nf_a)
    host_b.add_nf(nf_b)
    chain_a = host_a.add_chain("leg-a", [nf_a])
    chain_b = host_b.add_chain("leg-b", [nf_b])
    return host_a, host_b, chain_a, chain_b


class TestFlowTwins:
    def test_clone_shares_stats_and_tcp(self):
        flow = Flow("f", pkt_size=256, protocol="tcp")
        flow.tcp = object()
        twin = flow.clone_shared()
        assert twin.flow_id == flow.flow_id
        assert twin.stats is flow.stats
        assert twin.tcp is flow.tcp
        assert twin.chain is None

    def test_twin_loss_counts_aggregate(self):
        flow = Flow("f")
        twin = flow.clone_shared()
        flow.stats.queue_drops += 3
        twin.stats.entry_discards += 2
        assert flow.stats.lost == 5


class TestHostLink:
    def test_packets_cross_the_link(self, loop, default_config):
        host_a, host_b, chain_a, chain_b = two_hosts(loop, default_config)
        flow_a = Flow("f")
        host_a.install_flow(flow_a, chain_a)
        link = connect_hosts(loop, host_a, host_b, latency_ns=5 * USEC)
        flow_b = link.connect_flow(flow_a)
        host_b.install_flow(flow_b, chain_b)
        host_a.start()
        host_b.start()
        host_a.nic.receive(flow_a, 100, 0)
        loop.run_until(50 * MSEC)
        assert chain_a.completed == 100
        assert link.carried_packets == 100
        assert chain_b.completed == 100

    def test_unmapped_flows_stay_local(self, loop, default_config):
        host_a, host_b, chain_a, chain_b = two_hosts(loop, default_config)
        flow_a = Flow("f")
        host_a.install_flow(flow_a, chain_a)
        link = connect_hosts(loop, host_a, host_b)
        host_a.start()
        host_b.start()
        host_a.nic.receive(flow_a, 50, 0)
        loop.run_until(50 * MSEC)
        assert chain_a.completed == 50
        assert link.carried_packets == 0
        assert chain_b.completed == 0

    def test_link_latency_delays_arrival(self, loop, default_config):
        host_a, host_b, chain_a, chain_b = two_hosts(loop, default_config)
        flow_a = Flow("f")
        host_a.install_flow(flow_a, chain_a)
        link = connect_hosts(loop, host_a, host_b, latency_ns=5 * MSEC)
        host_b.install_flow(link.connect_flow(flow_a), chain_b)
        host_a.start()
        host_b.start()
        host_a.nic.receive(flow_a, 10, 0)
        loop.run_until(4 * MSEC)
        assert chain_b.completed == 0  # still on the wire
        loop.run_until(30 * MSEC)
        assert chain_b.completed == 10

    def test_origin_preserved_end_to_end(self, loop, default_config):
        host_a, host_b, chain_a, chain_b = two_hosts(loop, default_config)
        flow_a = Flow("f")
        host_a.install_flow(flow_a, chain_a)
        link = connect_hosts(loop, host_a, host_b, latency_ns=2 * MSEC)
        host_b.install_flow(link.connect_flow(flow_a), chain_b)
        host_a.start()
        host_b.start()
        host_a.nic.receive(flow_a, 10, 0)
        loop.run_until(50 * MSEC)
        # End-to-end latency includes the 2 ms wire.
        assert chain_b.latency_hist.mean >= 2 * MSEC

    def test_same_host_rejected(self, loop, default_config):
        host_a, _b, _ca, _cb = two_hosts(loop, default_config)
        with pytest.raises(ValueError):
            HostLink(loop, host_a, host_a)

    def test_double_tap_rejected(self, loop, default_config):
        host_a, host_b, *_ = two_hosts(loop, default_config)
        connect_hosts(loop, host_a, host_b)
        host_c = NFManager(loop, scheduler="BATCH", config=default_config)
        with pytest.raises(ValueError):
            connect_hosts(loop, host_a, host_c)


class TestCrossHostECN:
    def test_ecn_cuts_losses_across_hosts(self):
        from repro.experiments.cross_host_ecn import run_cross_host

        results = run_cross_host(duration_s=2.0)
        assert results[True].marked_packets > 0
        assert results[True].lost_packets < \
            max(1, results[False].lost_packets) / 2
        assert results[True].goodput_gbps > 0.2 * results[False].goodput_gbps

    def test_formatter(self):
        from repro.experiments.cross_host_ecn import (
            format_cross_host, run_cross_host)

        out = format_cross_host(run_cross_host(duration_s=1.0))
        assert "Cross-host" in out
