"""Additional chain/throttle-state and purge-path tests."""

import pytest

from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.chain import ServiceChain
from repro.platform.packet import Flow
from repro.platform.ring import PacketRing


def nf(name, config):
    return NFProcess(name, FixedCost(100), config=config)


class TestThrottleState:
    def test_chain_starts_unthrottled(self, config):
        chain = ServiceChain("c", [nf("a", config)])
        assert not chain.throttled
        assert chain.throttle_cause is None

    def test_counters_start_zero(self, config):
        chain = ServiceChain("c", [nf("a", config)])
        assert chain.completed == 0
        assert chain.entry_discards == 0
        assert chain.wasted_drops == 0
        assert chain.latency_hist.count == 0

    def test_iteration(self, config):
        members = [nf(n, config) for n in "abc"]
        chain = ServiceChain("c", members)
        assert list(chain) == members

    def test_position_of_foreign_nf_raises(self, config):
        chain = ServiceChain("c", [nf("a", config)])
        with pytest.raises(ValueError):
            chain.position_of(nf("stranger", config))


class TestDropChainPurge:
    """drop_chain is the in-queue purge variant of selective discard."""

    def test_purge_updates_all_invariants(self, config):
        ring = PacketRing(capacity=100)
        c1 = ServiceChain("c1", [nf("a", config)])
        c2 = ServiceChain("c2", [nf("b", config)])
        f1, f2 = Flow("f1"), Flow("f2")
        f1.chain, f2.chain = c1, c2
        ring.enqueue(f1, 30, 0)
        ring.enqueue(f2, 20, 1)
        ring.enqueue(f1, 10, 2)
        assert ring.drop_chain("c1") == 40
        assert len(ring) == 20
        assert ring.chain_count("c1") == 0
        assert ring.chain_count("c2") == 20
        assert ring.dropped_total == 40
        assert f1.stats.queue_drops == 40
        # conservation: enq == deq + queued + purged
        assert ring.enqueued_total == \
            ring.dequeued_total + len(ring) + 40

    def test_purge_missing_chain_is_noop(self):
        ring = PacketRing(capacity=10)
        ring.enqueue(Flow("f"), 5, 0)
        assert ring.drop_chain("ghost") == 0
        assert len(ring) == 5

    def test_head_wait_after_purge(self, config):
        ring = PacketRing(capacity=100)
        c1 = ServiceChain("c1", [nf("a", config)])
        f1 = Flow("f1")
        f1.chain = c1
        ring.enqueue(f1, 10, now_ns=5)
        ring.enqueue(Flow("plain"), 10, now_ns=50)
        ring.drop_chain("c1")
        assert ring.head_wait_ns(100) == 50
