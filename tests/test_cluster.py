"""Cluster layer: fabric links, flow steering, auto-scaling, scenarios.

The fabric tests pin the wire model's exact arithmetic (serialisation +
propagation, queue-cap drops, ECN marking); the steering tests pin the
balancer's determinism contract (least-load binding with a seeded,
hash-seed-independent tie-break, permanent bindings); the autoscaler
tests drive the control loop with synthetic ring pressure so each
hysteresis decision is checked against exact inputs; the scenario tests
run small end-to-end clusters and check conservation, determinism and
the digest-covered ``resilience["cluster"]`` block.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import result_to_dict
from repro.cluster import (
    Autoscaler,
    ChainTemplate,
    ClusterScenario,
    ClusterTopology,
    FabricLink,
    FlowSteerer,
)
from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.obs.export import render_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.session import ObsSession
from repro.platform.manager import NFManager
from repro.platform.nic import WIRE_OVERHEAD_BYTES
from repro.platform.packet import Flow
from repro.sim.clock import MSEC, SEC, USEC


# ----------------------------------------------------------------------
# FabricLink: the wire model
# ----------------------------------------------------------------------
class TestFabricLink:
    def make_link(self, loop, **kwargs):
        delivered = []

        def deliver(flow, count, origin_ns):
            delivered.append((flow.flow_id, count, origin_ns, loop.now))

        link = FabricLink(loop, "ingress->h0", deliver, **kwargs)
        return link, delivered

    def test_delivery_after_serialisation_and_latency(self, loop):
        link, delivered = self.make_link(
            loop, latency_ns=10 * USEC, link_bps=10e9)
        flow = Flow("f0", pkt_size=64)
        assert link.send(flow, 100, 0) == 100
        assert link.in_flight == 100
        loop.run_until(SEC)
        wire_bits = 100 * (64 + WIRE_OVERHEAD_BYTES) * 8
        expected = int(wire_bits * SEC / 10e9 + 10 * USEC)
        assert delivered == [("f0", 100, 0, expected)]
        assert link.in_flight == 0
        assert link.carried_packets == 100
        assert link.carried_bytes == 100 * 64

    def test_back_to_back_sends_queue_behind_busy_wire(self, loop):
        link, delivered = self.make_link(loop, latency_ns=0, link_bps=10e9)
        flow = Flow("f0", pkt_size=64)
        link.send(flow, 100, 0)
        link.send(flow, 100, 0)
        loop.run_until(SEC)
        per_batch = 100 * (64 + WIRE_OVERHEAD_BYTES) * 8 * SEC / 10e9
        assert delivered[0][3] == int(per_batch)
        assert delivered[1][3] == int(2 * per_batch)

    def test_origin_ns_rides_through_to_delivery(self, loop):
        link, delivered = self.make_link(loop)
        link.send(Flow("f0"), 5, 1000, origin_ns=42)
        loop.run_until(SEC)
        assert delivered[0][2] == 42

    def test_queue_cap_partial_accept_charges_queue_drops(self, loop):
        link, delivered = self.make_link(loop, queue_cap_pkts=150)
        flow = Flow("f0")
        assert link.send(flow, 100, 0) == 100
        assert link.send(flow, 100, 0) == 50       # 50 over the cap
        assert flow.stats.queue_drops == 50
        assert link.dropped_packets == 50
        assert link.send(flow, 10, 0) == 0          # wire saturated
        assert flow.stats.queue_drops == 60
        loop.run_until(SEC)
        assert sum(d[1] for d in delivered) == 150
        assert link.in_flight == 0

    def test_ecn_marks_responsive_flows_above_threshold(self, loop):
        link, _ = self.make_link(loop, ecn_mark_pkts=50)
        tcp = Flow("t0", protocol="tcp")
        udp = Flow("u0", protocol="udp")
        link.send(udp, 100, 0)                      # over threshold, deaf
        assert udp.stats.ecn_marks == 0
        link.send(tcp, 100, 0)
        assert tcp.stats.ecn_marks == 100
        assert link.ecn_marked == 100

    def test_counters_snapshot_is_json_safe(self, loop):
        link, _ = self.make_link(loop)
        link.send(Flow("f0"), 10, 0)
        snap = link.counters()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["carried_packets"] == 10 and snap["in_flight"] == 10

    def test_rejects_bad_thresholds(self, loop):
        with pytest.raises(ValueError, match="queue_cap_pkts"):
            FabricLink(loop, "l", lambda f, c, o: None, queue_cap_pkts=0)
        with pytest.raises(ValueError, match="ecn_mark_pkts"):
            FabricLink(loop, "l", lambda f, c, o: None, ecn_mark_pkts=-1)


# ----------------------------------------------------------------------
# Steering
# ----------------------------------------------------------------------
def small_cluster(loop, n_hosts=2):
    topology = ClusterTopology(loop, n_hosts)
    steerer = FlowSteerer(seed=0)
    template = ChainTemplate("svc", (100.0, 200.0), slo_us=500.0)
    return topology, steerer, template


def add_replica(topology, steerer, template, host_idx, replica, core_id=0):
    host = topology.hosts[host_idx]
    chain = template.instantiate(host, replica, core_id)
    return steerer.add_placement(
        host, chain, topology.ingress_links[host.name])


class TestFlowSteerer:
    def test_binds_to_least_loaded_placement(self, loop):
        topology, steerer, template = small_cluster(loop)
        add_replica(topology, steerer, template, 0, 0)
        add_replica(topology, steerer, template, 1, 1)
        steerer.register_flow_rate("heavy", 1_000_000)
        steerer.register_flow_rate("light", 10_000)
        p_heavy = steerer.placement_of(Flow("heavy"), 0)
        p_light = steerer.placement_of(Flow("light"), 0)
        # Second bind sees the first flow's megapps and avoids it.
        assert p_heavy is not p_light

    def test_binding_is_permanent(self, loop):
        topology, steerer, template = small_cluster(loop)
        add_replica(topology, steerer, template, 0, 0)
        add_replica(topology, steerer, template, 1, 1)
        flow = Flow("f0")
        first = steerer.placement_of(flow, 0)
        steerer.retire_placement(first)
        # Even retired, the bound flow keeps resolving to its placement.
        assert steerer.placement_of(flow, MSEC) is first
        assert first not in steerer.active_placements()

    def test_bind_installs_flow_on_host_manager(self, loop):
        topology, steerer, template = small_cluster(loop)
        placement = add_replica(topology, steerer, template, 0, 0)
        flow = Flow("f0")
        steerer.placement_of(flow, 0)
        assert flow.chain is placement.chain
        looked = placement.host.manager.flow_table.lookup(flow)
        assert looked is placement.chain

    def test_tiebreak_is_insertion_order_independent(self, loop):
        """Equal-load candidates: the seeded hash picks, not list order."""
        choices = []
        for order in ((0, 1), (1, 0)):
            topology, steerer, _template = small_cluster(loop)
            # Placement ids depend only on the host, so both permutations
            # offer the same candidate *set* in a different list order.
            for host_idx in order:
                template_h = ChainTemplate(f"svc{host_idx}", (100.0,))
                add_replica(topology, steerer, template_h, host_idx, 0)
            choices.append(
                steerer.placement_of(Flow("f0"), 0).placement_id)
        assert choices[0] == choices[1]

    def test_retired_placement_gets_no_new_flows(self, loop):
        topology, steerer, template = small_cluster(loop)
        p0 = add_replica(topology, steerer, template, 0, 0)
        p1 = add_replica(topology, steerer, template, 1, 1)
        steerer.retire_placement(p0)
        for i in range(4):
            assert steerer.placement_of(Flow(f"f{i}"), 0) is p1
        assert steerer.binds_per_placement() == {
            p0.placement_id: 0, p1.placement_id: 4}

    def test_duplicate_placement_rejected(self, loop):
        topology, steerer, template = small_cluster(loop)
        add_replica(topology, steerer, template, 0, 0)
        host = topology.hosts[1]
        chain = template.instantiate(host, 1, 0)
        chain.name = f"{template.name}~r0@h0"   # collide on purpose
        with pytest.raises(ValueError, match="duplicate placement"):
            steerer.add_placement(
                host, chain, topology.ingress_links[host.name])

    def test_no_active_placements_is_an_error(self, loop):
        _topology, steerer, _template = small_cluster(loop)
        with pytest.raises(RuntimeError, match="no active placements"):
            steerer.placement_of(Flow("f0"), 0)


# ----------------------------------------------------------------------
# ChainTemplate
# ----------------------------------------------------------------------
class TestChainTemplate:
    def test_instantiate_names_are_cluster_unique(self, loop):
        topology, _steerer, template = small_cluster(loop)
        c0 = template.instantiate(topology.hosts[0], 0, 0)
        c1 = template.instantiate(topology.hosts[1], 1, 0)
        assert c0.name == "svc~r0@h0" and c1.name == "svc~r1@h1"
        assert [nf.name for nf in c0.nfs] == ["svc~r0.nf1@h0",
                                              "svc~r0.nf2@h0"]
        assert all(nf.core.core_id == 0 for nf in c0.nfs)

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1 NF cost"):
            ChainTemplate("svc", ())
        with pytest.raises(ValueError, match="SLO budget"):
            ChainTemplate("svc", (100.0,), slo_us=0.0)


# ----------------------------------------------------------------------
# Autoscaler control loop (synthetic ring pressure, manual ticks)
# ----------------------------------------------------------------------
def make_autoscaler(loop, n_hosts=2, **kwargs):
    """An autoscaler over an unstarted cluster: no Monitor, so the
    evaluation falls back to raw ring occupancy — which the test sets
    directly by enqueuing packets."""
    topology, steerer, template = small_cluster(loop, n_hosts)
    kwargs.setdefault("up_after", 2)
    kwargs.setdefault("down_after", 3)
    kwargs.setdefault("cooldown_ns", 0)
    slots = kwargs.pop("slots", [(h, c) for h in range(n_hosts)
                                 for c in (0, 1) if (h, c) != (0, 0)])
    scaler = Autoscaler(topology, steerer, template, slots, **kwargs)
    scaler.add_initial_placement(0, 0)
    return topology, steerer, scaler


def pressure(placement, fraction=0.5):
    """Back up a placement's first ring past the occupancy trigger."""
    nf = placement.chain.nfs[0]
    nf.rx_ring.enqueue(Flow("junk"), int(nf.rx_ring.capacity * fraction), 0)


class TestAutoscaler:
    def test_scale_out_needs_sustained_pressure(self, loop):
        _topology, steerer, scaler = make_autoscaler(loop)
        pressure(steerer.placements[0])
        scaler._tick()
        assert scaler.scale_outs == 0           # streak of 1 < up_after
        scaler._tick()
        assert scaler.scale_outs == 1
        assert len(steerer.active_placements()) == 2
        event = scaler.events[0]
        assert event["kind"] == "scale_out" and event["host"] == "h1"

    def test_interrupted_streak_resets(self, loop):
        _topology, steerer, scaler = make_autoscaler(loop)
        placement = steerer.placements[0]
        pressure(placement)
        scaler._tick()
        placement.chain.nfs[0].rx_ring.clear()  # pressure vanishes
        scaler._tick()
        pressure(placement)
        scaler._tick()
        assert scaler.scale_outs == 0           # never 2 in a row

    def test_one_calm_replica_blocks_scale_out(self, loop):
        """One replica struggling is a balancing problem, not capacity."""
        # down_after is large so the calm replica is not drained first
        # (without a Monitor, demand reads 0.0 and idles accumulate).
        _topology, steerer, scaler = make_autoscaler(loop, down_after=50)
        scaler._scale_out(0)                    # second replica, calm
        pressure(steerer.placements[0])
        scaler.scale_outs = 0
        scaler.events.clear()
        for _ in range(5):
            scaler._tick()
        assert scaler.scale_outs == 0

    def test_cooldown_spaces_scale_outs(self, loop):
        _topology, steerer, scaler = make_autoscaler(
            loop, n_hosts=3, cooldown_ns=10 * MSEC)
        for p in steerer.placements:
            pressure(p)
        scaler._tick()
        scaler._tick()                          # fires at t=0
        assert scaler.scale_outs == 1
        for p in steerer.active_placements():
            pressure(p)
        scaler._tick()
        scaler._tick()                          # still inside cooldown
        assert scaler.scale_outs == 1
        loop.run_until(11 * MSEC)
        for p in steerer.active_placements():
            pressure(p)
        scaler._tick()
        scaler._tick()
        assert scaler.scale_outs == 2

    def test_new_replica_lands_on_least_crowded_host(self, loop):
        _topology, steerer, scaler = make_autoscaler(loop, n_hosts=2)
        scaler._scale_out(0)
        assert scaler.events[-1]["host"] == "h1"    # h0 had the seed
        scaler._scale_out(0)
        assert scaler.events[-1]["host"] == "h0"    # both at 1: slot order
        scaler._scale_out(0)
        assert scaler.events[-1]["host"] == "h1"

    def test_slot_exhaustion_is_graceful(self, loop):
        _topology, steerer, scaler = make_autoscaler(
            loop, slots=[(1, 0)])
        for p in steerer.placements:
            pressure(p)
        scaler._tick(), scaler._tick()
        assert scaler.scale_outs == 1
        for p in steerer.active_placements():
            pressure(p)
        for _ in range(4):
            scaler._tick()                      # no free slot left
        assert scaler.scale_outs == 1

    def test_scale_in_drains_newest_idle_but_never_last(self, loop):
        _topology, steerer, scaler = make_autoscaler(loop, down_after=3)
        scaler._scale_out(0)
        newest = steerer.placements[-1]
        for _ in range(3):
            scaler._tick()                      # everyone idle
        assert scaler.scale_ins == 1
        assert not newest.active
        for _ in range(10):
            scaler._tick()
        assert scaler.scale_ins == 1            # sole survivor is immune
        assert len(steerer.active_placements()) == 1

    def test_summary_shape(self, loop):
        _topology, _steerer, scaler = make_autoscaler(loop)
        scaler._tick()
        summary = scaler.summary()
        assert summary == {"evaluations": 1, "scale_outs": 0,
                           "scale_ins": 0, "replicas": 1, "events": []}

    def test_bad_knobs_rejected(self, loop):
        topology, steerer, template = small_cluster(loop)
        with pytest.raises(ValueError, match="up_after"):
            Autoscaler(topology, steerer, template, [], up_after=0)
        with pytest.raises(ValueError, match="outside the cluster"):
            Autoscaler(topology, steerer, template, [(7, 0)])


# ----------------------------------------------------------------------
# ClusterScenario end-to-end
# ----------------------------------------------------------------------
def small_scenario(hosts=2, autoscale=False, rate=200_000, flows=2):
    scenario = ClusterScenario(n_hosts=hosts, seed=3)
    scenario.add_slo_class("gold", 500.0)
    scenario.set_chain("svc", (120.0, 270.0), slo_us=500.0,
                       placements=((0, 0),))
    if autoscale:
        scenario.enable_autoscaler(
            slots=[(h, 0) for h in range(1, hosts)],
            up_after=2, cooldown_ns=10 * MSEC)
    for i in range(flows):
        scenario.add_flow(f"f{i}", rate_pps=rate, slo_class="gold")
    return scenario


class TestClusterScenario:
    def test_packets_flow_and_summary_merges_hosts(self):
        scenario = small_scenario()
        result = scenario.run(0.05)
        assert result.total_throughput_pps > 0
        assert "svc~r0@h0" in result.chains
        assert all(nf.startswith("svc~r0.") for nf in result.nfs)
        # Host-qualified core key space: host 0, core 0.
        assert 0 in result.core_utilization

    def test_conservation_across_the_fabric(self):
        scenario = small_scenario()
        scenario.run(0.05)
        offered = delivered = resid = 0
        for spec in scenario.generator.specs:
            offered += spec.flow.stats.offered
            delivered += spec.flow.stats.delivered
            resid += (spec.flow.stats.entry_discards
                      + spec.flow.stats.queue_drops)
        in_flight = sum(link.in_flight for link in scenario.topology.links)
        for host in scenario.topology.hosts:
            mgr = host.manager
            in_flight += len(mgr.nic.rx_ring)
            in_flight += sum(len(nf.rx_ring) + len(nf.tx_ring)
                             for nf in mgr.nfs)
        assert offered == delivered + resid + in_flight
        assert offered > 0 and delivered > 0

    def test_cluster_block_rides_resilience(self):
        result = small_scenario().run(0.05)
        block = result.resilience["cluster"]
        assert block["hosts"] == 2
        assert block["placements"] == 1
        assert block["flows_admitted"] == 2
        assert "ingress->h0" in block["links"]
        assert block["ingress_packets"] > 0
        exported = result_to_dict(result)
        assert exported["resilience"]["cluster"]["hosts"] == 2

    def test_identical_runs_digest_identically(self):
        r1 = small_scenario(autoscale=True).run(0.05)
        r2 = small_scenario(autoscale=True).run(0.05)
        assert json.dumps(result_to_dict(r1), sort_keys=True) \
            == json.dumps(result_to_dict(r2), sort_keys=True)

    def overload_scenario(self):
        """Initial demand ~0.68 of one replica core (3 Mpps against
        ~4.4 Mpps capacity), then two more flows at t=100 ms: the scaler
        must add a replica, and — bindings being permanent — only the
        late flows can land on it."""
        scenario = ClusterScenario(n_hosts=2, seed=3)
        scenario.add_slo_class("gold", 500.0)
        scenario.set_chain("svc", (120.0, 270.0), slo_us=500.0,
                           placements=((0, 0),))
        scenario.enable_autoscaler(
            slots=[(1, 0), (0, 1), (1, 1)],
            up_after=2, cooldown_ns=10 * MSEC)
        for i in range(2):
            scenario.add_flow(f"f{i}", rate_pps=1_500_000,
                              slo_class="gold")
        for i in range(2, 4):
            scenario.add_flow(f"f{i}", rate_pps=1_500_000,
                              slo_class="gold", start_ns=100 * MSEC)
        return scenario

    def test_autoscaler_reacts_to_overload(self):
        result = self.overload_scenario().run(0.2)
        scaler = result.resilience["cluster"]["autoscaler"]
        assert scaler["scale_outs"] >= 1
        assert scaler["events"][0]["kind"] == "scale_out"

    def test_flow_latency_tracker_spans_hosts(self):
        result = self.overload_scenario().run(0.2)
        flows = result.flow_latency["flows"]
        assert set(flows) == {"f0", "f1", "f2", "f3"}
        chains = result.flow_latency["chains"]
        assert len(chains) >= 2            # completions on >= 2 replicas

    def test_construction_guards(self):
        scenario = ClusterScenario(n_hosts=1)
        with pytest.raises(RuntimeError, match="set_chain before run"):
            scenario.run(0.01)
        with pytest.raises(RuntimeError, match="set_chain before"):
            scenario.enable_autoscaler(slots=[])
        scenario.set_chain("svc", (100.0,))
        with pytest.raises(RuntimeError, match="only be called once"):
            scenario.set_chain("svc2", (100.0,))
        with pytest.raises(ValueError, match="undeclared SLO class"):
            scenario.add_flow("f0", rate_pps=1000, slo_class="missing")


# ----------------------------------------------------------------------
# Monitor cluster snapshot
# ----------------------------------------------------------------------
def test_monitor_cluster_snapshot(loop, config):
    mgr = NFManager(loop, config=config)
    nf = mgr.add_nf(NFProcess("nf0", FixedCost(100), config=config))
    mgr.add_chain("c0", [nf])
    flow = Flow("f0")
    mgr.install_flow(flow, mgr.chains["c0"])
    mgr.start()
    mgr.nic.rx_ring.enqueue(flow, 64, 0)
    loop.run_until(5 * MSEC)
    assert mgr.monitor is not None
    snap = mgr.monitor.cluster_snapshot(loop.now)
    assert set(snap) == {"nf0"}
    row = snap["nf0"]
    assert set(row) == {"arrival_pps", "load", "rx_occupancy"}
    assert row["arrival_pps"] > 0
    nf.failed = True
    assert mgr.monitor.cluster_snapshot(loop.now) == {}


# ----------------------------------------------------------------------
# Duplicate-name hardening (NFManager.add_nf / add_chain)
# ----------------------------------------------------------------------
class TestDuplicateNames:
    def test_add_nf_rejects_duplicate_name(self, loop, config):
        mgr = NFManager(loop, config=config)
        mgr.add_nf(NFProcess("nf0", FixedCost(100), config=config))
        with pytest.raises(ValueError, match="duplicate NF name 'nf0'"):
            mgr.add_nf(NFProcess("nf0", FixedCost(200), config=config),
                       core_id=1)
        assert len(mgr.nfs) == 1                # roster unchanged

    def test_add_chain_rejects_duplicate_name(self, loop, config):
        mgr = NFManager(loop, config=config)
        nf = mgr.add_nf(NFProcess("nf0", FixedCost(100), config=config))
        mgr.add_chain("c0", [nf])
        with pytest.raises(ValueError, match="duplicate chain name"):
            mgr.add_chain("c0", [nf])


# ----------------------------------------------------------------------
# Link metrics on the obs bus / Prometheus exporter
# ----------------------------------------------------------------------
class TestLinkMetrics:
    def test_link_counters_exported_with_labels(self, loop):
        session = ObsSession(metrics_path=None)
        link = FabricLink(loop, "ingress->h1", lambda f, c, o: None,
                          queue_cap_pkts=50, ecn_mark_pkts=10)
        link.send(Flow("t0", protocol="tcp"), 60, 0)
        session.register_link_metrics([link], "clusterX")
        text = render_prometheus(session.registry)
        assert ('repro_link_carried_packets_total'
                '{link="ingress->h1",scenario="clusterX"} 50') in text
        assert ('repro_link_dropped_packets_total'
                '{link="ingress->h1",scenario="clusterX"} 10') in text
        assert ('repro_link_ecn_marked_total'
                '{link="ingress->h1",scenario="clusterX"} 50') in text
        assert "# TYPE repro_link_carried_packets_total counter" in text
        assert "# TYPE repro_link_in_flight gauge" in text

    def test_hostile_link_names_are_escaped(self, loop):
        """Label values with quotes/backslashes/newlines must round-trip
        through the Prometheus text format escaped, not mangled."""
        session = ObsSession()
        name = 'tor"0\\rack\n->h9'
        link = FabricLink(loop, name, lambda f, c, o: None)
        session.register_link_metrics([link], 'h"o\\st')
        text = render_prometheus(session.registry)
        assert ('link="tor\\"0\\\\rack\\n->h9"') in text
        assert ('scenario="h\\"o\\\\st"') in text
        # Every exposition line stays a single line (raw newline escaped).
        for line in text.splitlines():
            assert line.startswith(("#", "repro_link_"))

    def test_attach_cluster_registers_hosts_and_links(self):
        from repro.obs.session import activate_session, deactivate_session

        scenario = small_scenario()
        session = ObsSession()
        activate_session(session)
        try:
            scenario.run(0.02)     # run attaches the active session
        finally:
            deactivate_session()
        names = {name for name, _labels, _kind, _m
                 in session.registry.collect()}
        assert "repro_link_in_flight" in names
        assert "repro_nf_processed_packets" in names
        labels = {labels.get("scenario")
                  for _n, labels, _k, _m in session.registry.collect()}
        assert "cluster2/NORMAL/NFVnice/h0" in labels
        assert "cluster2/NORMAL/NFVnice/h1" in labels
        assert "cluster2/NORMAL/NFVnice" in labels
