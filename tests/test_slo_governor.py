"""SLO-miss projection and the deadline governor's control actions.

The projection predicate and the governor's boost/migrate/decay state
machine are driven here with *synthetic* percentile snapshots — the
``chain_p99_us``/``chain_occupancy`` telemetry reads are the documented
override points — so each control decision is tested against exact
inputs, including the boundary where p99 exactly equals the SLO.
"""

from repro.core.monitor import SLOGovernor
from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.manager import NFManager
from repro.platform.packet import Flow
from repro.sched.deadline import project_slo_miss
from repro.sim.clock import MSEC, USEC


# ----------------------------------------------------------------------
# project_slo_miss: the pure predicate
# ----------------------------------------------------------------------
class TestProjectSLOMiss:
    def test_p99_above_slo_is_a_miss(self):
        assert project_slo_miss(501.0, 500.0, occupancy=0.0)

    def test_p99_exactly_at_slo_is_compliant(self):
        """The boundary: an SLO is an upper bound, p99 == SLO meets it."""
        assert not project_slo_miss(500.0, 500.0, occupancy=0.0)
        # ... even with a full ring: the predictive branch needs p99
        # strictly above the headroom fraction *and* p99 <= slo here is
        # irrelevant — 500.0 > 0.8 * 500.0, so occupancy tips it over.
        assert project_slo_miss(500.0, 500.0, occupancy=1.0)

    def test_predictive_branch_needs_both_signals(self):
        # Inside headroom but ring backed up -> projected miss.
        assert project_slo_miss(450.0, 500.0, occupancy=0.6)
        # Same latency, calm ring -> no miss.
        assert not project_slo_miss(450.0, 500.0, occupancy=0.4)
        # Backed-up ring but latency well under headroom -> no miss.
        assert not project_slo_miss(300.0, 500.0, occupancy=0.9)

    def test_occupancy_threshold_boundary(self):
        assert project_slo_miss(450.0, 500.0, occupancy=0.5)
        assert not project_slo_miss(450.0, 500.0, occupancy=0.499)

    def test_degenerate_slo_never_misses(self):
        assert not project_slo_miss(100.0, 0.0, occupancy=1.0)
        assert not project_slo_miss(100.0, -1.0, occupancy=1.0)


# ----------------------------------------------------------------------
# Governor state machine over synthetic snapshots
# ----------------------------------------------------------------------
class SyntheticGovernor(SLOGovernor):
    """Governor whose telemetry comes from test-scripted dicts."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.p99_script = {}
        self.occupancy_script = {}

    def chain_p99_us(self, chain_name):
        return self.p99_script.get(chain_name, 0.0)

    def chain_occupancy(self, chain):
        return self.occupancy_script.get(chain.name, 0.0)


def build_manager(loop, config):
    mgr = NFManager(loop, scheduler="DEADLINE", config=config)
    nfs = [mgr.add_nf(NFProcess(f"nf{i}", FixedCost(200), config=config))
           for i in range(2)]
    chain = mgr.add_chain("gold", nfs)
    flow = Flow("f0", slo_ns=500 * USEC)
    mgr.install_flow(flow, chain)
    return mgr, nfs, chain, flow


def make_governor(mgr, spare=(1,), **kwargs):
    kwargs.setdefault("migrate_after", 3)
    kwargs.setdefault("cooldown", 2)
    return SyntheticGovernor(mgr, {"gold": 500 * USEC},
                             spare_cores=list(spare), **kwargs)


class TestGovernorControl:
    def test_p99_at_slo_never_boosts(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr)
        gov.p99_script["gold"] = 500.0      # exactly the SLO
        for t in range(5):
            gov.evaluate(t * MSEC)
        assert gov.misses == 0
        assert gov.boost == {}
        assert gov.events == []
        assert all(gov.priority_factor(nf) == 1.0 for nf in nfs)

    def test_miss_boosts_and_caps(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr, spare=(), boost_step=2.0, boost_max=8.0)
        gov.p99_script["gold"] = 900.0
        for t in range(5):
            gov.evaluate(t * MSEC)
        assert gov.misses == 5
        assert gov.boost["gold"] == 8.0     # 2 -> 4 -> 8, capped
        assert all(gov.priority_factor(nf) == 8.0 for nf in nfs)
        kinds = [e["kind"] for e in gov.events]
        assert kinds == ["boost", "boost", "boost"]

    def test_migration_after_consecutive_misses(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr, migrate_after=3)
        gov.p99_script["gold"] = 900.0
        # Back up nf1's ring so it is unambiguously the bottleneck.
        nfs[1].rx_ring.enqueue(Flow("junk"), 32, 0)

        gov.evaluate(0)
        gov.evaluate(MSEC)
        assert gov.migrations == 0          # streak of 2: not yet
        gov.evaluate(2 * MSEC)
        assert gov.migrations == 1
        assert nfs[1].core.core_id == 1     # moved to the spare core
        assert nfs[0].core.core_id == 0
        moves = [e for e in gov.events if e["kind"] == "migrate"]
        assert moves and moves[0]["nf"] == "nf1"

    def test_interrupted_streak_does_not_migrate(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr, migrate_after=3)
        for t, p99 in enumerate([900.0, 900.0, 100.0, 900.0, 900.0]):
            gov.p99_script["gold"] = p99
            gov.evaluate(t * MSEC)
        assert gov.migrations == 0          # never 3 misses in a row

    def test_no_spare_cores_means_no_migration(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr, spare=())
        gov.p99_script["gold"] = 900.0
        for t in range(6):
            gov.evaluate(t * MSEC)
        assert gov.migrations == 0
        assert {nf.core.core_id for nf in nfs} == {0}

    def test_boost_decays_after_cooldown(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr, spare=(), cooldown=2)
        gov.p99_script["gold"] = 900.0
        gov.evaluate(0)
        gov.evaluate(MSEC)
        assert gov.boost["gold"] == 4.0
        gov.p99_script["gold"] = 100.0      # recovered
        gov.evaluate(2 * MSEC)
        assert gov.boost["gold"] == 4.0     # one compliant check: hold
        gov.evaluate(3 * MSEC)
        assert gov.boost["gold"] == 2.0     # cooldown reached: decay
        gov.evaluate(4 * MSEC)
        gov.evaluate(5 * MSEC)
        assert "gold" not in gov.boost      # fully recovered
        assert gov.priority_factor(nfs[0]) == 1.0

    def test_summary_shape(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr)
        gov.p99_script["gold"] = 900.0
        gov.evaluate(0)
        summary = gov.summary()
        assert summary["targets_us"] == {"gold": 500.0}
        assert summary["checks"] == 1
        assert summary["misses"] == 1
        assert summary["boost"] == {"gold": 2.0}


# ----------------------------------------------------------------------
# migrate_nf mechanics
# ----------------------------------------------------------------------
class TestMigrateNF:
    def test_moves_task_between_cores(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        mgr.start()
        nf = nfs[1]
        old_core = nf.core
        assert mgr.migrate_nf(nf, 2)
        assert nf.core.core_id == 2
        assert nf not in old_core.tasks
        assert nf in mgr.core(2).tasks

    def test_same_core_is_a_noop(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        assert not mgr.migrate_nf(nfs[0], 0)
        assert nfs[0].core.core_id == 0

    def test_migrated_nf_still_serves_traffic(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        mgr.start()
        assert mgr.migrate_nf(nfs[1], 3)
        mgr.nic.rx_ring.enqueue(flow, 64, loop.now)
        loop.run_until(loop.now + 50 * MSEC)
        assert chain.completed == 64


# ----------------------------------------------------------------------
# migrate_nf x fault plans: the migration target fails mid-run
# ----------------------------------------------------------------------
class TestMigrateAcrossCoreFail:
    def build(self, loop, config, policy="restart-warm"):
        from repro.faults.plan import FaultPlan, FaultSpec

        mgr, nfs, chain, flow = build_manager(loop, config)
        # Core 2 — the migration target of these tests — dies 10 ms in.
        plan = FaultPlan(
            specs=[FaultSpec(kind="core_fail", target="2", at_s=0.010)],
            policy=policy, detection_period_s=0.002,
            restart_delay_s=0.001)
        mgr.attach_faults(plan)
        return mgr, nfs, chain, flow

    def drive(self, loop, mgr, flow, until_ms=60, batch=16):
        """Steady arrivals that stop 10 ms before the horizon, so a
        recovered platform finishes the run fully drained."""
        stop_ns = loop.now + (until_ms - 10) * MSEC

        def pump():
            if loop.now <= stop_ns:
                mgr.nic.rx_ring.enqueue(flow, batch, loop.now)

        loop.call_every(MSEC, pump)
        loop.run_until(loop.now + until_ms * MSEC)

    def conservation(self, mgr, flow):
        """Arrivals were enqueued straight into the NIC ring (no
        generator), so "offered" is what that ring accepted plus what it
        shed; every shed packet — NIC or NF ring — lands in the flow's
        ``queue_drops``."""
        in_flight = len(mgr.nic.rx_ring) + sum(
            len(nf.rx_ring) + len(nf.tx_ring) for nf in mgr.nfs)
        unroutable = mgr.rx_thread.unroutable if mgr.rx_thread else 0
        stats = flow.stats
        offered = (mgr.nic.rx_ring.enqueued_total
                   + mgr.nic.rx_ring.dropped_total)
        return offered, (stats.delivered + stats.entry_discards
                         + stats.queue_drops + unroutable + in_flight)

    def test_core_fail_on_migration_target_recovers(self, loop, config):
        mgr, nfs, chain, flow = self.build(loop, config)
        mgr.start()
        assert mgr.migrate_nf(nfs[1], 2)
        self.drive(loop, mgr, flow)
        # The watchdog detected the dead core and restart-warm repaired
        # it: the migrated NF is not stranded.
        assert mgr.faults is not None
        inc = mgr.faults.incidents[0]
        assert inc.kind == "core_fail" and inc.recovered_ns is not None
        assert nfs[1].core is not None
        assert nfs[1].core.core_id == 2 and not nfs[1].core.failed
        assert not nfs[1].failed
        # Service resumed after the repair: far more completed than the
        # ~10 ms of pre-outage arrivals, and the backlog fully drained.
        assert chain.completed > 10 * 16
        offered, accounted = self.conservation(mgr, flow)
        assert offered == accounted
        assert sum(len(nf.rx_ring) + len(nf.tx_ring)
                   for nf in mgr.nfs) == 0

    def test_core_fail_on_migration_target_conserves_packets(
            self, loop, config):
        mgr, nfs, chain, flow = self.build(loop, config)
        mgr.start()
        assert mgr.migrate_nf(nfs[1], 2)
        self.drive(loop, mgr, flow)
        offered, accounted = self.conservation(mgr, flow)
        assert offered == accounted

    def test_migrating_onto_an_already_failed_core_recovers(
            self, loop, config):
        """The race the other way: the core dies first, then the
        orchestrator moves an NF onto it.  The migrant is not in the
        incident's resident-task snapshot, so the injector must adopt it
        into the open core incident rather than writing the watchdog's
        suspicion off as a false alarm."""
        mgr, nfs, chain, flow = self.build(loop, config)
        mgr.core(2)       # exists (idle) when the fault plan fires
        mgr.start()
        loop.call_every(MSEC, lambda: mgr.nic.rx_ring.enqueue(
            flow, 16, loop.now))
        loop.run_until(12 * MSEC)            # core 2 is down by now
        assert mgr.cores[2].failed
        assert mgr.migrate_nf(nfs[1], 2)
        self.drive(loop, mgr, flow, until_ms=60)
        assert mgr.faults is not None
        inc = mgr.faults.incidents[0]
        assert inc.recovered_ns is not None
        assert mgr.faults.false_alarms == 0
        assert nfs[1].core is not None and not nfs[1].core.failed
        assert not nfs[1].failed
        assert chain.completed > 0
        offered, accounted = self.conservation(mgr, flow)
        assert offered == accounted
