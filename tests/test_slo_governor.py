"""SLO-miss projection and the deadline governor's control actions.

The projection predicate and the governor's boost/migrate/decay state
machine are driven here with *synthetic* percentile snapshots — the
``chain_p99_us``/``chain_occupancy`` telemetry reads are the documented
override points — so each control decision is tested against exact
inputs, including the boundary where p99 exactly equals the SLO.
"""

from repro.core.monitor import SLOGovernor
from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.manager import NFManager
from repro.platform.packet import Flow
from repro.sched.deadline import project_slo_miss
from repro.sim.clock import MSEC, USEC


# ----------------------------------------------------------------------
# project_slo_miss: the pure predicate
# ----------------------------------------------------------------------
class TestProjectSLOMiss:
    def test_p99_above_slo_is_a_miss(self):
        assert project_slo_miss(501.0, 500.0, occupancy=0.0)

    def test_p99_exactly_at_slo_is_compliant(self):
        """The boundary: an SLO is an upper bound, p99 == SLO meets it."""
        assert not project_slo_miss(500.0, 500.0, occupancy=0.0)
        # ... even with a full ring: the predictive branch needs p99
        # strictly above the headroom fraction *and* p99 <= slo here is
        # irrelevant — 500.0 > 0.8 * 500.0, so occupancy tips it over.
        assert project_slo_miss(500.0, 500.0, occupancy=1.0)

    def test_predictive_branch_needs_both_signals(self):
        # Inside headroom but ring backed up -> projected miss.
        assert project_slo_miss(450.0, 500.0, occupancy=0.6)
        # Same latency, calm ring -> no miss.
        assert not project_slo_miss(450.0, 500.0, occupancy=0.4)
        # Backed-up ring but latency well under headroom -> no miss.
        assert not project_slo_miss(300.0, 500.0, occupancy=0.9)

    def test_occupancy_threshold_boundary(self):
        assert project_slo_miss(450.0, 500.0, occupancy=0.5)
        assert not project_slo_miss(450.0, 500.0, occupancy=0.499)

    def test_degenerate_slo_never_misses(self):
        assert not project_slo_miss(100.0, 0.0, occupancy=1.0)
        assert not project_slo_miss(100.0, -1.0, occupancy=1.0)


# ----------------------------------------------------------------------
# Governor state machine over synthetic snapshots
# ----------------------------------------------------------------------
class SyntheticGovernor(SLOGovernor):
    """Governor whose telemetry comes from test-scripted dicts."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.p99_script = {}
        self.occupancy_script = {}

    def chain_p99_us(self, chain_name):
        return self.p99_script.get(chain_name, 0.0)

    def chain_occupancy(self, chain):
        return self.occupancy_script.get(chain.name, 0.0)


def build_manager(loop, config):
    mgr = NFManager(loop, scheduler="DEADLINE", config=config)
    nfs = [mgr.add_nf(NFProcess(f"nf{i}", FixedCost(200), config=config))
           for i in range(2)]
    chain = mgr.add_chain("gold", nfs)
    flow = Flow("f0", slo_ns=500 * USEC)
    mgr.install_flow(flow, chain)
    return mgr, nfs, chain, flow


def make_governor(mgr, spare=(1,), **kwargs):
    kwargs.setdefault("migrate_after", 3)
    kwargs.setdefault("cooldown", 2)
    return SyntheticGovernor(mgr, {"gold": 500 * USEC},
                             spare_cores=list(spare), **kwargs)


class TestGovernorControl:
    def test_p99_at_slo_never_boosts(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr)
        gov.p99_script["gold"] = 500.0      # exactly the SLO
        for t in range(5):
            gov.evaluate(t * MSEC)
        assert gov.misses == 0
        assert gov.boost == {}
        assert gov.events == []
        assert all(gov.priority_factor(nf) == 1.0 for nf in nfs)

    def test_miss_boosts_and_caps(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr, spare=(), boost_step=2.0, boost_max=8.0)
        gov.p99_script["gold"] = 900.0
        for t in range(5):
            gov.evaluate(t * MSEC)
        assert gov.misses == 5
        assert gov.boost["gold"] == 8.0     # 2 -> 4 -> 8, capped
        assert all(gov.priority_factor(nf) == 8.0 for nf in nfs)
        kinds = [e["kind"] for e in gov.events]
        assert kinds == ["boost", "boost", "boost"]

    def test_migration_after_consecutive_misses(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr, migrate_after=3)
        gov.p99_script["gold"] = 900.0
        # Back up nf1's ring so it is unambiguously the bottleneck.
        nfs[1].rx_ring.enqueue(Flow("junk"), 32, 0)

        gov.evaluate(0)
        gov.evaluate(MSEC)
        assert gov.migrations == 0          # streak of 2: not yet
        gov.evaluate(2 * MSEC)
        assert gov.migrations == 1
        assert nfs[1].core.core_id == 1     # moved to the spare core
        assert nfs[0].core.core_id == 0
        moves = [e for e in gov.events if e["kind"] == "migrate"]
        assert moves and moves[0]["nf"] == "nf1"

    def test_interrupted_streak_does_not_migrate(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr, migrate_after=3)
        for t, p99 in enumerate([900.0, 900.0, 100.0, 900.0, 900.0]):
            gov.p99_script["gold"] = p99
            gov.evaluate(t * MSEC)
        assert gov.migrations == 0          # never 3 misses in a row

    def test_no_spare_cores_means_no_migration(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr, spare=())
        gov.p99_script["gold"] = 900.0
        for t in range(6):
            gov.evaluate(t * MSEC)
        assert gov.migrations == 0
        assert {nf.core.core_id for nf in nfs} == {0}

    def test_boost_decays_after_cooldown(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr, spare=(), cooldown=2)
        gov.p99_script["gold"] = 900.0
        gov.evaluate(0)
        gov.evaluate(MSEC)
        assert gov.boost["gold"] == 4.0
        gov.p99_script["gold"] = 100.0      # recovered
        gov.evaluate(2 * MSEC)
        assert gov.boost["gold"] == 4.0     # one compliant check: hold
        gov.evaluate(3 * MSEC)
        assert gov.boost["gold"] == 2.0     # cooldown reached: decay
        gov.evaluate(4 * MSEC)
        gov.evaluate(5 * MSEC)
        assert "gold" not in gov.boost      # fully recovered
        assert gov.priority_factor(nfs[0]) == 1.0

    def test_summary_shape(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        gov = make_governor(mgr)
        gov.p99_script["gold"] = 900.0
        gov.evaluate(0)
        summary = gov.summary()
        assert summary["targets_us"] == {"gold": 500.0}
        assert summary["checks"] == 1
        assert summary["misses"] == 1
        assert summary["boost"] == {"gold": 2.0}


# ----------------------------------------------------------------------
# migrate_nf mechanics
# ----------------------------------------------------------------------
class TestMigrateNF:
    def test_moves_task_between_cores(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        mgr.start()
        nf = nfs[1]
        old_core = nf.core
        assert mgr.migrate_nf(nf, 2)
        assert nf.core.core_id == 2
        assert nf not in old_core.tasks
        assert nf in mgr.core(2).tasks

    def test_same_core_is_a_noop(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        assert not mgr.migrate_nf(nfs[0], 0)
        assert nfs[0].core.core_id == 0

    def test_migrated_nf_still_serves_traffic(self, loop, config):
        mgr, nfs, chain, flow = build_manager(loop, config)
        mgr.start()
        assert mgr.migrate_nf(nfs[1], 3)
        mgr.nic.rx_ring.enqueue(flow, 64, loop.now)
        loop.run_until(loop.now + 50 * MSEC)
        assert chain.completed == 64
