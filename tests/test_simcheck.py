"""simcheck lint pass: fixture battery, suppression, exit-code contract.

Each file under ``tests/fixtures/simcheck/bad/`` violates exactly one
rule a known number of times; everything under ``clean/`` is the closest
non-violating look-alike and must stay silent.  The repo's own ``src/``
tree is asserted clean with zero suppressions — the acceptance bar for
``repro check``.
"""

from __future__ import annotations

import io
import json
from collections import Counter
from pathlib import Path

import pytest

from repro.check.simcheck import check_file, check_paths, iter_rules, main

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "simcheck"
BAD = FIXTURES / "bad" / "repro" / "sim"
CLEAN = FIXTURES / "clean"

#: fixture file -> (rule code, expected finding count)
EXPECTED = {
    "sim101_wall_clock.py": ("SIM101", 5),
    "sim102_global_random.py": ("SIM102", 4),
    "sim103_id_sort_key.py": ("SIM103", 3),
    "sim201_set_iteration.py": ("SIM201", 4),
    "sim301_float_ns.py": ("SIM301", 7),
    "sim401_rng_construction.py": ("SIM401", 3),
    "sim501_heapq.py": ("SIM501", 5),
}


@pytest.mark.parametrize(
    "name,code,count",
    [(n, c, k) for n, (c, k) in sorted(EXPECTED.items())],
    ids=sorted(EXPECTED),
)
def test_bad_fixture_fires_exactly_its_rule(name, code, count):
    report = check_file(str(BAD / name))
    assert report.error is None
    assert Counter(f.code for f in report.findings) == {code: count}
    assert report.suppressed == 0


def test_clean_fixtures_are_silent():
    reports, suppressed = check_paths([str(CLEAN)])
    assert len(reports) == 5
    assert suppressed == 0
    for report in reports:
        assert report.error is None
        assert report.findings == []


def test_suppression_silences_its_line_only():
    report = check_file(str(BAD / "suppressed_sim101.py"))
    assert report.suppressed == 1
    assert [f.code for f in report.findings] == ["SIM101"]


def test_findings_sorted_and_renderable():
    report = check_file(str(BAD / "sim301_float_ns.py"))
    positions = [(f.line, f.col, f.code) for f in report.findings]
    assert positions == sorted(positions)
    for f in report.findings:
        rendered = f.render()
        assert rendered.startswith(f"{f.path}:{f.line}:{f.col}: {f.code} ")
        assert f.message in rendered


def test_rule_registry_codes_unique_and_documented():
    rules = list(iter_rules())
    codes = [r.code for r in rules]
    assert len(codes) == len(set(codes))
    assert {"SIM101", "SIM102", "SIM103",
            "SIM201", "SIM301", "SIM401", "SIM501"} <= set(codes)
    assert all(r.summary for r in rules)


def test_exit_code_zero_on_clean_tree():
    out = io.StringIO()
    assert main([str(CLEAN)], out=out) == 0
    assert "0 finding(s), 0 suppression(s)" in out.getvalue()


def test_exit_code_one_and_json_payload_on_findings():
    out = io.StringIO()
    assert main([str(FIXTURES / "bad")], as_json=True, out=out) == 1
    payload = json.loads(out.getvalue())
    assert payload["errors"] == []
    assert payload["suppressed"] == 1
    expected_total = sum(k for _c, k in EXPECTED.values()) + 1
    assert len(payload["findings"]) == expected_total
    assert set(payload["rules"]) >= set(c for c, _k in EXPECTED.values())
    for f in payload["findings"]:
        assert set(f) == {"path", "line", "col", "code", "message"}


def test_exit_code_two_on_parse_error(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    out = io.StringIO()
    assert main([str(broken)], out=out) == 2
    assert "ERROR" in out.getvalue()


def test_parse_error_does_not_abort_the_batch(tmp_path):
    """A broken file is a per-file error entry; the rest still scans."""
    (tmp_path / "broken.py").write_text("def f(:\n")
    (tmp_path / "uses_clock.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n")
    out = io.StringIO()
    assert main([str(tmp_path)], as_json=True, out=out) == 2
    payload = json.loads(out.getvalue())
    assert len(payload["errors"]) == 1
    assert payload["errors"][0]["path"].endswith("broken.py")
    codes = {f["code"] for f in payload["findings"]}
    assert "SIM101" in codes  # the parseable file was still linted


def test_sarif_output_structure():
    out = io.StringIO()
    assert main([str(FIXTURES / "bad")], fmt="sarif", out=out) == 1
    doc = json.loads(out.getvalue())
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "simcheck"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert {"SIM101", "SIM501"} <= rule_ids
    assert all(r["shortDescription"]["text"] for r in driver["rules"])
    assert run["results"], "expected findings in SARIF results"
    for res in run["results"]:
        assert res["ruleId"] in rule_ids
        assert res["level"] == "error"
        assert res["message"]["text"]
        (loc,) = res["locations"]
        region = loc["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1  # SARIF columns are 1-based
        assert res["partialFingerprints"]["simcheck/v1"]


def test_sarif_clean_tree_has_empty_results():
    out = io.StringIO()
    assert main([str(CLEAN)], fmt="sarif", out=out) == 0
    doc = json.loads(out.getvalue())
    assert doc["runs"][0]["results"] == []


def test_repo_src_tree_is_clean_with_zero_suppressions():
    out = io.StringIO()
    assert main([str(REPO / "src")], out=out) == 0
    assert "0 finding(s), 0 suppression(s)" in out.getvalue()
