"""Unit tests for the cgroup cpu.shares controller."""

import pytest

from repro.sched.base import CoreTask
from repro.sched.cgroups import CgroupController, MAX_SHARES, MIN_SHARES


def test_set_shares_updates_task_weight():
    ctl = CgroupController()
    t = CoreTask("nf1")
    ctl.set_shares(t, 2048)
    assert t.weight == 2048
    assert ctl.get_shares(t) == 2048


def test_write_counted_and_costed():
    ctl = CgroupController(sysfs_write_ns=5000.0)
    t = CoreTask("nf1")
    ctl.set_shares(t, 2048)
    ctl.set_shares(t, 4096)
    assert ctl.writes == 2
    assert ctl.write_time_ns == pytest.approx(10000.0)


def test_identical_value_skips_write():
    """Re-writing an unchanged weight is a wasted syscall; the Monitor
    avoids it and so does the model."""
    ctl = CgroupController()
    t = CoreTask("nf1")
    ctl.set_shares(t, 2048)
    ctl.set_shares(t, 2048)
    assert ctl.writes == 1


def test_clamped_to_kernel_bounds():
    ctl = CgroupController()
    t = CoreTask("nf1")
    assert ctl.set_shares(t, 0) == MIN_SHARES
    assert ctl.set_shares(t, 10 ** 9) == MAX_SHARES


def test_rounding():
    ctl = CgroupController()
    t = CoreTask("nf1")
    assert ctl.set_shares(t, 100.6) == 101


def test_get_shares_default_is_task_weight():
    ctl = CgroupController()
    t = CoreTask("nf1", weight=777)
    assert ctl.get_shares(t) == 777
