"""Unit tests for deterministic RNG streams."""

import numpy as np

from repro.sim.rng import RngFactory


def test_same_seed_same_stream():
    a = RngFactory(42).stream("traffic").random(16)
    b = RngFactory(42).stream("traffic").random(16)
    assert np.array_equal(a, b)


def test_different_names_differ():
    factory = RngFactory(42)
    a = factory.stream("traffic").random(16)
    b = factory.stream("costs").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngFactory(1).stream("traffic").random(16)
    b = RngFactory(2).stream("traffic").random(16)
    assert not np.array_equal(a, b)


def test_stream_isolation():
    """Drawing from one stream must not perturb another (the property that
    keeps experiment variants comparable)."""
    factory = RngFactory(7)
    s1 = factory.stream("a")
    _ = s1.random(1000)
    fresh = factory.stream("b").random(8)
    alone = RngFactory(7).stream("b").random(8)
    assert np.array_equal(fresh, alone)
