"""Unit + property tests for the packet descriptor ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.chain import ServiceChain
from repro.platform.packet import Flow
from repro.platform.ring import PacketRing


def flow(fid="f", chain=None):
    f = Flow(fid)
    f.chain = chain
    return f


class FakeChain:
    """Stands in for ServiceChain in ring-only tests."""

    def __init__(self, name):
        self.name = name


class TestEnqueueDequeue:
    def test_enqueue_within_capacity(self):
        ring = PacketRing(capacity=100)
        accepted, dropped, hi = ring.enqueue(flow(), 60, now_ns=5)
        assert (accepted, dropped) == (60, 0)
        assert len(ring) == 60
        assert ring.free == 40

    def test_overflow_drops_excess(self):
        ring = PacketRing(capacity=100)
        accepted, dropped, _ = ring.enqueue(flow(), 150, now_ns=0)
        assert (accepted, dropped) == (100, 50)
        assert ring.dropped_total == 50

    def test_drop_counted_on_flow(self):
        ring = PacketRing(capacity=10)
        f = flow()
        ring.enqueue(f, 25, now_ns=0)
        assert f.stats.queue_drops == 15

    def test_zero_count_noop(self):
        ring = PacketRing(capacity=10)
        assert ring.enqueue(flow(), 0, 0) == (0, 0, False)

    def test_dequeue_fifo_order(self):
        ring = PacketRing(capacity=100)
        f1, f2 = flow("f1"), flow("f2")
        ring.enqueue(f1, 10, now_ns=0)
        ring.enqueue(f2, 10, now_ns=1)
        segs = ring.dequeue(15)
        assert [(s.flow.flow_id, s.count) for s in segs] == \
            [("f1", 10), ("f2", 5)]
        assert len(ring) == 5

    def test_dequeue_preserves_enqueue_timestamp(self):
        ring = PacketRing(capacity=100)
        ring.enqueue(flow(), 10, now_ns=42)
        seg = ring.dequeue(10)[0]
        assert seg.enqueue_ns == 42

    def test_adjacent_same_flow_same_time_merges(self):
        ring = PacketRing(capacity=100)
        f = flow()
        ring.enqueue(f, 5, now_ns=7)
        ring.enqueue(f, 5, now_ns=7)
        segs = ring.dequeue(100)
        assert len(segs) == 1 and segs[0].count == 10

    def test_counters(self):
        ring = PacketRing(capacity=10)
        ring.enqueue(flow(), 15, 0)
        ring.dequeue(4)
        assert ring.enqueued_total == 10
        assert ring.dropped_total == 5
        assert ring.dequeued_total == 4


class TestWatermarks:
    def test_high_watermark_feedback(self):
        ring = PacketRing(capacity=100, high_watermark=0.8, low_watermark=0.6)
        _, _, hi = ring.enqueue(flow(), 79, 0)
        assert not hi
        _, _, hi = ring.enqueue(flow(), 1, 0)
        assert hi
        assert ring.above_high

    def test_below_low(self):
        ring = PacketRing(capacity=100, high_watermark=0.8, low_watermark=0.6)
        ring.enqueue(flow(), 60, 0)
        assert not ring.below_low
        ring.dequeue(1)
        assert ring.below_low

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            PacketRing(capacity=100, high_watermark=0.5, low_watermark=0.8)
        with pytest.raises(ValueError):
            PacketRing(capacity=0)

    def test_head_wait(self):
        ring = PacketRing(capacity=10)
        assert ring.head_wait_ns(100) == 0
        ring.enqueue(flow(), 1, now_ns=40)
        assert ring.head_wait_ns(100) == 60

    def test_occupancy(self):
        ring = PacketRing(capacity=100)
        ring.enqueue(flow(), 25, 0)
        assert ring.occupancy() == pytest.approx(0.25)


class TestChainAccounting:
    def test_chain_counts_tracked(self):
        ring = PacketRing(capacity=100)
        ca, cb = FakeChain("A"), FakeChain("B")
        ring.enqueue(flow("f1", ca), 10, 0)
        ring.enqueue(flow("f2", cb), 20, 1)
        assert ring.chain_count("A") == 10
        assert ring.chain_count("B") == 20
        ring.dequeue(15)
        assert ring.chain_count("A") == 0
        assert ring.chain_count("B") == 15

    def test_chains_present(self):
        ring = PacketRing(capacity=100)
        ring.enqueue(flow("f1", FakeChain("A")), 10, 0)
        assert ring.chains_present() == ["A"]

    def test_drop_chain_selective(self):
        ring = PacketRing(capacity=100)
        ca, cb = FakeChain("A"), FakeChain("B")
        ring.enqueue(flow("f1", ca), 10, 0)
        ring.enqueue(flow("f2", cb), 20, 1)
        ring.enqueue(flow("f3", ca), 5, 2)
        dropped = ring.drop_chain("A")
        assert dropped == 15
        assert len(ring) == 20
        assert ring.chain_count("A") == 0
        # FIFO order of survivors preserved.
        assert [s.flow.flow_id for s in ring.dequeue(100)] == ["f2"]

    def test_clear(self):
        ring = PacketRing(capacity=100)
        ring.enqueue(flow(), 42, 0)
        assert ring.clear() == 42
        assert len(ring) == 0


class TestDropReasons:
    def test_overflow_counted_as_full(self):
        ring = PacketRing(capacity=10)
        ring.enqueue(flow(), 25, 0)
        assert ring.drops_by_reason == {"full": 15}

    def test_sealed_ring_rejects_enqueue_and_dequeue(self):
        ring = PacketRing(capacity=100)
        ring.enqueue(flow(), 10, 0)
        ring.sealed = True
        accepted, dropped, _ = ring.enqueue(flow(), 5, 1)
        assert (accepted, dropped) == (0, 5)
        assert ring.drops_by_reason == {"sealed": 5}
        # Stalled in both directions: the queued packets are stuck too.
        assert ring.dequeue(100) == []
        assert len(ring) == 10
        ring.sealed = False
        assert sum(s.count for s in ring.dequeue(100)) == 10

    def test_dead_ring_sheds_as_nf_dead(self):
        ring = PacketRing(capacity=100)
        f = flow()
        ring.dead = True
        accepted, dropped, _ = ring.enqueue(f, 7, 0)
        assert (accepted, dropped) == (0, 7)
        assert ring.drops_by_reason == {"nf_dead": 7}
        assert f.stats.queue_drops == 7
        # Unlike sealed, a dead ring still drains: recovery policies read
        # (warm) or clear (cold) what the old instance left behind.
        ring.dead = False
        ring.enqueue(f, 3, 1)
        assert sum(s.count for s in ring.dequeue(100)) == 3

    def test_purge_counted_as_purged(self):
        ring = PacketRing(capacity=100)
        ring.enqueue(flow("f1", FakeChain("A")), 10, 0)
        ring.enqueue(flow("f2", FakeChain("B")), 20, 1)
        assert ring.drop_chain("A") == 10
        assert ring.drops_by_reason == {"purged": 10}

    def test_reasons_sum_to_dropped_total(self):
        ring = PacketRing(capacity=10)
        f = flow("f", FakeChain("A"))
        ring.enqueue(f, 15, 0)            # 5 full drops
        ring.sealed = True
        ring.enqueue(f, 4, 1)             # 4 sealed drops
        ring.sealed = False
        ring.dead = True
        ring.enqueue(f, 3, 2)             # 3 nf_dead drops
        ring.dead = False
        ring.drop_chain("A")              # 10 purged
        assert ring.drops_by_reason == {
            "full": 5, "sealed": 4, "nf_dead": 3, "purged": 10}
        assert sum(ring.drops_by_reason.values()) == ring.dropped_total


@given(st.lists(st.tuples(st.sampled_from(["enq", "deq"]),
                          st.integers(1, 40)), max_size=80))
@settings(max_examples=120, deadline=None)
def test_packet_conservation_property(ops):
    """enqueued == dequeued + dropped-at-enqueue + still-queued, and the
    queue length never exceeds capacity."""
    ring = PacketRing(capacity=64)
    f = flow()
    for op, n in ops:
        if op == "enq":
            ring.enqueue(f, n, 0)
        else:
            ring.dequeue(n)
        assert 0 <= len(ring) <= ring.capacity
    offered = ring.enqueued_total + ring.dropped_total
    assert ring.enqueued_total == ring.dequeued_total + len(ring)
    assert offered >= ring.enqueued_total


@given(st.lists(st.integers(1, 30), min_size=1, max_size=30),
       st.integers(1, 200))
@settings(max_examples=80, deadline=None)
def test_dequeue_returns_exactly_requested(batches, want):
    ring = PacketRing(capacity=10_000)
    f = flow()
    total = 0
    for t, n in enumerate(batches):
        # distinct timestamps keep segments separate
        ring.enqueue(f, n, now_ns=t)
        total += n
    segs = ring.dequeue(want)
    got = sum(s.count for s in segs)
    assert got == min(want, total)
    assert len(ring) == total - got
