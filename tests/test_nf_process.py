"""Tests for the NF process model (libnf's run loop)."""

import math

import pytest

from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.chain import ServiceChain
from repro.platform.packet import Flow
from repro.sched.base import ExecOutcome
from repro.sim.clock import SEC, USEC


def make_nf(config, cycles=260, name="nf", **kw):
    return NFProcess(name, FixedCost(cycles), config=config, **kw)


NS_PER_PKT = 100  # 260 cycles at 2.6 GHz


class TestEstimate:
    def test_empty_queue_estimates_zero(self, config):
        nf = make_nf(config)
        assert nf.estimate_run_ns(0) == 0.0

    def test_estimate_matches_queue_cost(self, config):
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), 50, 0)
        assert nf.estimate_run_ns(0) == pytest.approx(50 * NS_PER_PKT)

    def test_estimate_bounded_by_tx_space(self, config):
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), 50, 0)
        nf.tx_ring.enqueue(Flow("g"), config.ring_capacity - 10, 0)
        assert nf.estimate_run_ns(0) == pytest.approx(10 * NS_PER_PKT)

    def test_estimate_zero_when_tx_full(self, config):
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        nf.tx_ring.enqueue(Flow("g"), config.ring_capacity, 0)
        assert nf.estimate_run_ns(0) == 0.0

    def test_estimate_zero_when_relinquish_flagged(self, config):
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), 5, 0)
        nf.relinquish = True
        assert nf.estimate_run_ns(0) == 0.0

    def test_busy_loop_estimates_infinite(self, config):
        nf = make_nf(config, busy_loop=True)
        assert nf.estimate_run_ns(0) == math.inf


class TestExecute:
    def test_processes_exact_packet_count(self, config):
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), 100, 0)
        result = nf.execute(0, 10 * NS_PER_PKT)
        assert nf.processed_packets == 10
        assert len(nf.tx_ring) == 10
        assert len(nf.rx_ring) == 90
        assert result.outcome is ExecOutcome.USED_ALL
        assert result.used_ns == pytest.approx(10 * NS_PER_PKT)

    def test_blocks_when_queue_drained(self, config):
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        result = nf.execute(0, SEC)
        assert result.outcome is ExecOutcome.RAN_OUT
        assert nf.processed_packets == 10
        assert result.used_ns == pytest.approx(10 * NS_PER_PKT)

    def test_blocks_when_tx_fills(self, config):
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), config.ring_capacity, 0)
        nf.tx_ring.enqueue(Flow("g"), config.ring_capacity - 20, 0)
        result = nf.execute(0, SEC)
        assert result.outcome is ExecOutcome.TX_BLOCKED
        assert nf.processed_packets == 20

    def test_flag_yield_between_batches(self, config):
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), 100, 0)
        nf.relinquish = True
        result = nf.execute(0, SEC)
        assert result.outcome is ExecOutcome.FLAG_YIELD
        assert nf.processed_packets == 0

    def test_cycle_credit_carries_partial_packet(self, config):
        """Half a packet's worth of grant is banked, not lost."""
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        r1 = nf.execute(0, NS_PER_PKT // 2)
        assert nf.processed_packets == 0
        assert r1.outcome is ExecOutcome.USED_ALL
        nf.execute(0, NS_PER_PKT // 2)
        assert nf.processed_packets == 1

    def test_batch_limit_respected_per_iteration(self, config):
        """Throughput still exceeds one batch per execute; the limit is per
        inner loop iteration, not per grant."""
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), 200, 0)
        nf.execute(0, 200 * NS_PER_PKT)
        assert nf.processed_packets == 200

    def test_busy_loop_consumes_grant_without_output(self, config):
        nf = make_nf(config, busy_loop=True)
        result = nf.execute(0, 1000.0)
        assert result.used_ns == 1000.0
        assert result.outcome is ExecOutcome.USED_ALL
        assert nf.processed_packets == 0


class TestAccounting:
    def test_per_chain_counts(self, config):
        nf = make_nf(config)
        other = make_nf(config, name="nf2")
        c1 = ServiceChain("c1", [nf])
        c2 = ServiceChain("c2", [nf, other])
        f1, f2 = Flow("f1"), Flow("f2")
        f1.chain, f2.chain = c1, c2
        nf.rx_ring.enqueue(f1, 7, 0)
        nf.rx_ring.enqueue(f2, 5, 1)
        nf.execute(0, SEC)
        assert nf.processed_by_chain == {"c1": 7, "c2": 5}

    def test_latency_histogram_records_queue_wait(self, config):
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), 1, now_ns=100)
        nf.execute(600, SEC)
        assert nf.latency_hist.count == 1
        assert nf.latency_hist.mean == pytest.approx(500, rel=0.01)

    def test_service_time_sampling(self, config):
        nf = make_nf(config)
        # Enough samples past the warm-up discard (spread over time so the
        # 1 ms sampling gate admits them).
        for i in range(15):
            nf.rx_ring.enqueue(Flow("f"), 32, i)
            nf.execute(i * 2 * config.service_sample_period_ns, SEC)
        est = nf.service_time_ns(15 * 2 * config.service_sample_period_ns)
        assert est == pytest.approx(NS_PER_PKT, rel=0.05)

    def test_service_time_falls_back_to_model_mean(self, config):
        nf = make_nf(config, cycles=520)
        assert nf.service_time_ns(0) == pytest.approx(200.0)

    def test_offered_arrivals_includes_drops(self, config):
        nf = make_nf(config)
        nf.rx_ring.enqueue(Flow("f"), config.ring_capacity + 50, 0)
        assert nf.offered_arrivals == config.ring_capacity + 50


class TestOverheadWrapping:
    def test_fixed_cost_folds_overhead(self):
        from repro.platform.config import PlatformConfig

        cfg = PlatformConfig(nf_overhead_cycles=140.0)
        nf = NFProcess("nf", FixedCost(120), config=cfg)
        assert nf.cost_model.mean_cycles == 260

    def test_busy_loop_unwrapped(self):
        from repro.platform.config import PlatformConfig

        cfg = PlatformConfig(nf_overhead_cycles=140.0)
        nf = NFProcess("nf", FixedCost(120), config=cfg, busy_loop=True)
        assert nf.cost_model.mean_cycles == 120
