"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.engine import EventLoop


class TestScheduling:
    def test_starts_at_zero(self, loop):
        assert loop.now == 0
        assert loop.pending == 0

    def test_schedule_and_step(self, loop):
        fired = []
        loop.schedule(100, lambda: fired.append(loop.now))
        assert loop.pending == 1
        assert loop.step()
        assert fired == [100]
        assert loop.now == 100
        assert loop.pending == 0

    def test_call_at_absolute_time(self, loop):
        fired = []
        loop.call_at(500, lambda: fired.append(loop.now))
        loop.run_until(1000)
        assert fired == [500]

    def test_negative_delay_rejected(self, loop):
        with pytest.raises(ValueError):
            loop.schedule(-1, lambda: None)

    def test_past_call_at_clamped_to_now(self, loop):
        loop.run_until(100)
        fired = []
        loop.call_at(50, lambda: fired.append(loop.now))
        loop.run_until(101)
        assert fired == [100]

    def test_fractional_time_rounds_up(self, loop):
        handle = loop.schedule(10.2, lambda: None)
        assert handle.time == 11

    def test_events_fire_in_time_order(self, loop):
        order = []
        loop.schedule(300, lambda: order.append(3))
        loop.schedule(100, lambda: order.append(1))
        loop.schedule(200, lambda: order.append(2))
        loop.run()
        assert order == [1, 2, 3]

    def test_same_time_fifo_order(self, loop):
        order = []
        for i in range(5):
            loop.schedule(100, (lambda v: lambda: order.append(v))(i))
        loop.run()
        assert order == [0, 1, 2, 3, 4]

    def test_event_can_schedule_more_events(self, loop):
        fired = []

        def chain():
            fired.append(loop.now)
            if len(fired) < 3:
                loop.schedule(10, chain)

        loop.schedule(10, chain)
        loop.run()
        assert fired == [10, 20, 30]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, loop):
        fired = []
        handle = loop.schedule(100, lambda: fired.append(1))
        handle.cancel()
        loop.run()
        assert fired == []

    def test_cancel_is_idempotent(self, loop):
        handle = loop.schedule(100, lambda: None)
        handle.cancel()
        handle.cancel()
        assert loop.pending == 0

    def test_cancel_updates_pending_count(self, loop):
        handles = [loop.schedule(100 + i, lambda: None) for i in range(10)]
        assert loop.pending == 10
        for h in handles[:4]:
            h.cancel()
        assert loop.pending == 6

    def test_cancel_one_of_two_same_time(self, loop):
        fired = []
        h1 = loop.schedule(100, lambda: fired.append(1))
        loop.schedule(100, lambda: fired.append(2))
        h1.cancel()
        loop.run()
        assert fired == [2]


class TestRunUntil:
    def test_clock_advances_to_horizon(self, loop):
        loop.run_until(12345)
        assert loop.now == 12345

    def test_event_at_horizon_fires(self, loop):
        fired = []
        loop.schedule(100, lambda: fired.append(1))
        loop.run_until(100)
        assert fired == [1]

    def test_event_after_horizon_does_not_fire(self, loop):
        fired = []
        loop.schedule(101, lambda: fired.append(1))
        loop.run_until(100)
        assert fired == []
        assert loop.pending == 1

    def test_run_until_resumable(self, loop):
        fired = []
        loop.schedule(150, lambda: fired.append(loop.now))
        loop.run_until(100)
        assert fired == []
        loop.run_until(200)
        assert fired == [150]

    def test_run_max_events(self, loop):
        for i in range(10):
            loop.schedule(i + 1, lambda: None)
        assert loop.run(max_events=4) == 4
        assert loop.pending == 6
