"""Unit tests for the discrete-event loop."""

import gc
import weakref

import pytest

from repro.sim.engine import EventLoop, _noop


class TestScheduling:
    def test_starts_at_zero(self, loop):
        assert loop.now == 0
        assert loop.pending == 0

    def test_schedule_and_step(self, loop):
        fired = []
        loop.schedule(100, lambda: fired.append(loop.now))
        assert loop.pending == 1
        assert loop.step()
        assert fired == [100]
        assert loop.now == 100
        assert loop.pending == 0

    def test_call_at_absolute_time(self, loop):
        fired = []
        loop.call_at(500, lambda: fired.append(loop.now))
        loop.run_until(1000)
        assert fired == [500]

    def test_negative_delay_rejected(self, loop):
        with pytest.raises(ValueError):
            loop.schedule(-1, lambda: None)

    def test_past_call_at_clamped_to_now(self, loop):
        loop.run_until(100)
        fired = []
        loop.call_at(50, lambda: fired.append(loop.now))
        loop.run_until(101)
        assert fired == [100]

    def test_fractional_time_rounds_up(self, loop):
        handle = loop.schedule(10.2, lambda: None)
        assert handle.time == 11

    def test_events_fire_in_time_order(self, loop):
        order = []
        loop.schedule(300, lambda: order.append(3))
        loop.schedule(100, lambda: order.append(1))
        loop.schedule(200, lambda: order.append(2))
        loop.run()
        assert order == [1, 2, 3]

    def test_same_time_fifo_order(self, loop):
        order = []
        for i in range(5):
            loop.schedule(100, (lambda v: lambda: order.append(v))(i))
        loop.run()
        assert order == [0, 1, 2, 3, 4]

    def test_event_can_schedule_more_events(self, loop):
        fired = []

        def chain():
            fired.append(loop.now)
            if len(fired) < 3:
                loop.schedule(10, chain)

        loop.schedule(10, chain)
        loop.run()
        assert fired == [10, 20, 30]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, loop):
        fired = []
        handle = loop.schedule(100, lambda: fired.append(1))
        handle.cancel()
        loop.run()
        assert fired == []

    def test_cancel_is_idempotent(self, loop):
        handle = loop.schedule(100, lambda: None)
        handle.cancel()
        handle.cancel()
        assert loop.pending == 0

    def test_cancel_updates_pending_count(self, loop):
        handles = [loop.schedule(100 + i, lambda: None) for i in range(10)]
        assert loop.pending == 10
        for h in handles[:4]:
            h.cancel()
        assert loop.pending == 6

    def test_cancel_one_of_two_same_time(self, loop):
        fired = []
        h1 = loop.schedule(100, lambda: fired.append(1))
        loop.schedule(100, lambda: fired.append(2))
        h1.cancel()
        loop.run()
        assert fired == [2]


class TestLazyCancelAccounting:
    """Edge cases of lazy cancellation: counters, same-instant ordering,
    reference release, and heap compaction."""

    def test_live_events_never_negative(self, loop):
        handles = [loop.schedule(100 + i, lambda: None) for i in range(8)]
        for h in handles:
            h.cancel()
            h.cancel()     # idempotent: second cancel must not re-decrement
            assert loop.pending >= 0
        assert loop.pending == 0
        loop.run()
        assert loop.pending == 0

    def test_cancel_after_fire_is_noop(self, loop):
        handle = loop.schedule(100, lambda: None)
        loop.run()
        assert loop.pending == 0
        handle.cancel()            # late cancel of a fired handle
        assert loop.pending == 0   # must not drive the counter negative

    def test_cancel_then_reschedule_same_timestamp(self, loop):
        """A cancelled handle is skipped even when a fresh event lands at
        the exact same instant (the re-plan idiom in Core dispatch)."""
        fired = []
        stale = loop.schedule(100, lambda: fired.append("stale"))
        stale.cancel()
        loop.schedule(100, lambda: fired.append("fresh"))
        loop.run()
        assert fired == ["fresh"]
        assert loop.now == 100

    def test_cancel_during_same_instant_callback(self, loop):
        """An event cancelled by an earlier event at the same timestamp
        must not fire."""
        fired = []
        second = loop.schedule(100, lambda: fired.append(2))

        def first():
            fired.append(1)
            second.cancel()

        loop.call_at(100, first)
        loop.run()
        # `second` was scheduled before `first` so it fires first; FIFO
        # order at equal timestamps is by scheduling sequence.
        assert fired == [2, 1]

    def test_earlier_scheduled_event_can_cancel_later_same_instant(self, loop):
        fired = []
        hit = []

        def first():
            fired.append("first")
            hit[0].cancel()

        loop.schedule(100, first)
        hit.append(loop.schedule(100, lambda: fired.append("second")))
        loop.run()
        assert fired == ["first"]

    def test_cancel_releases_callback_reference(self, loop):
        class Payload:
            pass

        payload = Payload()
        ref = weakref.ref(payload)
        handle = loop.schedule(100, lambda payload=payload: None)
        del payload
        gc.collect()
        assert ref() is not None       # closure keeps it alive while live
        handle.cancel()
        gc.collect()
        assert ref() is None           # cancel drops the closure immediately
        assert handle.callback is _noop

    def test_compaction_bounds_heap_in_replan_heavy_run(self):
        """The re-plan pattern — schedule far ahead, cancel, repeat — must
        not grow the heap without bound."""
        loop = EventLoop(impl="heap")
        keeper = loop.schedule(10**9, lambda: None)  # one long-lived event
        for i in range(10_000):
            handle = loop.schedule(10**6 + i, lambda: None)
            handle.cancel()
        assert loop.pending == 1
        # Without compaction the heap would hold ~10_001 entries.
        assert len(loop._heap) <= EventLoop._COMPACT_MIN_SIZE
        keeper.cancel()

    def test_bucket_drop_bounds_wheel_in_replan_heavy_run(self):
        """The wheel's per-bucket live counters must bound the same
        pattern: cancelling the last live handle in a bucket drops the
        bucket, tombstones included."""
        loop = EventLoop(impl="wheel")
        keeper = loop.schedule(10**9, lambda: None)  # one long-lived event
        for i in range(10_000):
            handle = loop.schedule(10**6 + i, lambda: None)
            handle.cancel()
        assert loop.pending == 1
        # Without per-bucket cleanup the wheel would hold ~10_001 entries.
        assert loop._total <= EventLoop._COMPACT_MIN_SIZE
        keeper.cancel()

    def test_compaction_preserves_event_order(self, loop):
        """Compaction mid-stream must not perturb firing order."""
        fired = []
        for i in range(200):
            loop.schedule(1000 + i, (lambda v: lambda: fired.append(v))(i))
        # Cancel every odd event to trigger at least one compaction.
        cancels = [loop.schedule(5000 + i, lambda: None) for i in range(300)]
        for h in cancels:
            h.cancel()
        loop.run()
        assert fired == list(range(200))
        assert loop.pending == 0

    def test_compaction_in_callback_during_run_until(self, loop):
        """Regression: cancel() runs from event callbacks, and run_until()
        holds a local alias to the heap list while draining it.  Compaction
        must therefore rebuild the heap in place — a rebind would strand the
        drain loop on the stale list and silently drop every event scheduled
        after the compaction."""
        fired = []
        victims = [loop.schedule(10**6 + i, lambda: None) for i in range(200)]

        def replan():
            for h in victims:     # >half the heap dead -> compaction fires
                h.cancel()
            loop.schedule(10, lambda: fired.append("after"))

        loop.schedule(5, replan)
        loop.run_until(1000)
        assert fired == ["after"]
        assert loop.pending == 0

    def test_small_heaps_are_not_compacted(self):
        """Below the size floor the heap keeps dead entries (cheaper)."""
        loop = EventLoop(impl="heap")
        live = loop.schedule(100, lambda: None)
        dead = [loop.schedule(200 + i, lambda: None) for i in range(10)]
        for h in dead:
            h.cancel()
        assert len(loop._heap) == 11
        assert loop.pending == 1
        live.cancel()


class TestRunUntil:
    def test_clock_advances_to_horizon(self, loop):
        loop.run_until(12345)
        assert loop.now == 12345

    def test_event_at_horizon_fires(self, loop):
        fired = []
        loop.schedule(100, lambda: fired.append(1))
        loop.run_until(100)
        assert fired == [1]

    def test_event_after_horizon_does_not_fire(self, loop):
        fired = []
        loop.schedule(101, lambda: fired.append(1))
        loop.run_until(100)
        assert fired == []
        assert loop.pending == 1

    def test_run_until_resumable(self, loop):
        fired = []
        loop.schedule(150, lambda: fired.append(loop.now))
        loop.run_until(100)
        assert fired == []
        loop.run_until(200)
        assert fired == [150]

    def test_run_max_events(self, loop):
        for i in range(10):
            loop.schedule(i + 1, lambda: None)
        assert loop.run(max_events=4) == 4
        assert loop.pending == 6
