"""Tests for flow specs, the traffic generator and the TCP model."""

import numpy as np
import pytest

from repro.platform.nic import NIC, line_rate_pps
from repro.platform.packet import Flow
from repro.sim.clock import MSEC, SEC, USEC
from repro.traffic.flows import FlowSpec
from repro.traffic.generator import TrafficGenerator
from repro.traffic.tcp import TCPFlow


class TestFlowSpec:
    def test_active_window(self):
        spec = FlowSpec(Flow("f"), 1000, start_ns=100, stop_ns=200)
        assert not spec.active(99)
        assert spec.active(100)
        assert spec.active(199)
        assert not spec.active(200)

    def test_always_active_without_stop(self):
        spec = FlowSpec(Flow("f"), 1000)
        assert spec.active(10 ** 15)

    def test_cbr_exact_long_run(self):
        spec = FlowSpec(Flow("f"), rate_pps=333_333.0)
        total = sum(spec.packets_this_tick(100 * USEC) for _ in range(10_000))
        assert total == pytest.approx(333_333.0, rel=1e-3)

    def test_cbr_carry_fractional(self):
        spec = FlowSpec(Flow("f"), rate_pps=5000.0)  # 0.5 pkt per 100us
        counts = [spec.packets_this_tick(100 * USEC) for _ in range(10)]
        assert sum(counts) == 5
        assert set(counts) <= {0, 1}

    def test_poisson_needs_rng(self):
        spec = FlowSpec(Flow("f"), 1000, pattern="poisson")
        with pytest.raises(ValueError):
            spec.packets_this_tick(MSEC)
        rng = np.random.default_rng(0)
        total = sum(spec.packets_this_tick(MSEC, rng) for _ in range(5000))
        assert total == pytest.approx(5000, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSpec(Flow("f"), -1)
        with pytest.raises(ValueError):
            FlowSpec(Flow("f"), 1, pattern="burst")


class TestGenerator:
    def test_offers_to_nic(self, loop):
        nic = NIC()
        gen = TrafficGenerator(loop, nic, tick_ns=100 * USEC)
        f = Flow("f")
        gen.add_flow(f, rate_pps=1.0e6)
        gen.start()
        loop.run_until(10 * MSEC)
        assert f.stats.offered == pytest.approx(10_000, rel=0.01)
        assert gen.offered_total == f.stats.offered

    def test_line_rate_split(self, loop):
        nic = NIC()
        gen = TrafficGenerator(loop, nic)
        flows = [Flow(f"f{i}") for i in range(4)]
        specs = gen.add_line_rate_flows(flows)
        assert len(specs) == 4
        total = sum(s.rate_pps for s in specs)
        assert total == pytest.approx(line_rate_pps(64), rel=1e-6)

    def test_inactive_flow_emits_nothing(self, loop):
        nic = NIC()
        gen = TrafficGenerator(loop, nic, tick_ns=100 * USEC)
        f = Flow("f")
        gen.add_flow(f, rate_pps=1e6, start_ns=5 * MSEC)
        gen.start()
        loop.run_until(4 * MSEC)
        assert f.stats.offered == 0

    def test_rate_change_mid_run(self, loop):
        nic = NIC()
        gen = TrafficGenerator(loop, nic, tick_ns=100 * USEC)
        f = Flow("f")
        spec = gen.add_flow(f, rate_pps=1e6)
        gen.start()
        loop.run_until(10 * MSEC)
        before = f.stats.offered
        spec.rate_pps = 0.0
        loop.run_until(20 * MSEC)
        assert f.stats.offered == before


class TestTCP:
    def _spec(self, loop):
        f = Flow("t", pkt_size=1500, protocol="tcp")
        return FlowSpec(f, rate_pps=1.0)

    def test_requires_tcp_flow(self, loop):
        with pytest.raises(ValueError):
            TCPFlow(loop, FlowSpec(Flow("u", protocol="udp"), 1.0))

    def test_slow_start_doubles(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=2, max_cwnd=1000)
        tcp.start()
        loop.run_until(3 * MSEC)
        assert tcp.cwnd == 16  # 2 -> 4 -> 8 -> 16

    def test_loss_halves_once_per_rtt(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=64, max_cwnd=64)
        tcp.start()
        spec.flow.stats.queue_drops = 100  # many losses, one RTT
        loop.run_until(MSEC)
        assert tcp.cwnd == 32
        assert tcp.decreases == 1

    def test_ecn_mark_triggers_decrease(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=64, max_cwnd=64)
        tcp.start()
        tcp.on_ecn_mark(1, 0)
        loop.run_until(MSEC)
        assert tcp.cwnd == 32

    def test_congestion_avoidance_additive(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=10, max_cwnd=100,
                      ssthresh=10)
        tcp.start()
        loop.run_until(5 * MSEC)
        assert tcp.cwnd == 15  # +1 per RTT above ssthresh

    def test_cwnd_floor_is_one(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=1, max_cwnd=10)
        tcp.start()
        for i in range(5):
            spec.flow.stats.queue_drops += 1
            loop.run_until((i + 1) * MSEC)
        assert tcp.cwnd == 1.0

    def test_rate_tracks_cwnd(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=100, max_cwnd=100)
        # 100 packets per 1 ms RTT = 100 kpps.
        assert spec.rate_pps == pytest.approx(1e5)
        assert tcp.rate_bps == pytest.approx(1e5 * 1500 * 8)

    def test_flow_backref(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec)
        assert spec.flow.tcp is tcp
