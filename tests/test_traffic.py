"""Tests for flow specs, the traffic generator and the TCP model."""

import numpy as np
import pytest

from repro.platform.nic import NIC, line_rate_pps
from repro.platform.packet import Flow
from repro.sim.clock import MSEC, SEC, USEC
from repro.traffic.flows import FlowSpec
from repro.traffic.generator import TrafficGenerator
from repro.traffic.tcp import TCPFlow


class TestFlowSpec:
    def test_active_window(self):
        spec = FlowSpec(Flow("f"), 1000, start_ns=100, stop_ns=200)
        assert not spec.active(99)
        assert spec.active(100)
        assert spec.active(199)
        assert not spec.active(200)

    def test_always_active_without_stop(self):
        spec = FlowSpec(Flow("f"), 1000)
        assert spec.active(10 ** 15)

    def test_cbr_exact_long_run(self):
        spec = FlowSpec(Flow("f"), rate_pps=333_333.0)
        total = sum(spec.packets_this_tick(100 * USEC) for _ in range(10_000))
        assert total == pytest.approx(333_333.0, rel=1e-3)

    def test_cbr_carry_fractional(self):
        spec = FlowSpec(Flow("f"), rate_pps=5000.0)  # 0.5 pkt per 100us
        counts = [spec.packets_this_tick(100 * USEC) for _ in range(10)]
        assert sum(counts) == 5
        assert set(counts) <= {0, 1}

    def test_poisson_needs_rng(self):
        spec = FlowSpec(Flow("f"), 1000, pattern="poisson")
        with pytest.raises(ValueError):
            spec.packets_this_tick(MSEC)
        rng = np.random.default_rng(0)
        total = sum(spec.packets_this_tick(MSEC, rng) for _ in range(5000))
        assert total == pytest.approx(5000, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSpec(Flow("f"), -1)
        with pytest.raises(ValueError):
            FlowSpec(Flow("f"), 1, pattern="burst")


class TestGenerator:
    def test_offers_to_nic(self, loop):
        nic = NIC()
        gen = TrafficGenerator(loop, nic, tick_ns=100 * USEC)
        f = Flow("f")
        gen.add_flow(f, rate_pps=1.0e6)
        gen.start()
        loop.run_until(10 * MSEC)
        assert f.stats.offered == pytest.approx(10_000, rel=0.01)
        assert gen.offered_total == f.stats.offered

    def test_line_rate_split(self, loop):
        nic = NIC()
        gen = TrafficGenerator(loop, nic)
        flows = [Flow(f"f{i}") for i in range(4)]
        specs = gen.add_line_rate_flows(flows)
        assert len(specs) == 4
        total = sum(s.rate_pps for s in specs)
        assert total == pytest.approx(line_rate_pps(64), rel=1e-6)

    def test_inactive_flow_emits_nothing(self, loop):
        nic = NIC()
        gen = TrafficGenerator(loop, nic, tick_ns=100 * USEC)
        f = Flow("f")
        gen.add_flow(f, rate_pps=1e6, start_ns=5 * MSEC)
        gen.start()
        loop.run_until(4 * MSEC)
        assert f.stats.offered == 0

    def test_rate_change_mid_run(self, loop):
        nic = NIC()
        gen = TrafficGenerator(loop, nic, tick_ns=100 * USEC)
        f = Flow("f")
        spec = gen.add_flow(f, rate_pps=1e6)
        gen.start()
        loop.run_until(10 * MSEC)
        before = f.stats.offered
        spec.rate_pps = 0.0
        loop.run_until(20 * MSEC)
        assert f.stats.offered == before


class TestTCP:
    def _spec(self, loop):
        f = Flow("t", pkt_size=1500, protocol="tcp")
        return FlowSpec(f, rate_pps=1.0)

    def test_requires_tcp_flow(self, loop):
        with pytest.raises(ValueError):
            TCPFlow(loop, FlowSpec(Flow("u", protocol="udp"), 1.0))

    def test_slow_start_doubles(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=2, max_cwnd=1000)
        tcp.start()
        loop.run_until(3 * MSEC)
        assert tcp.cwnd == 16  # 2 -> 4 -> 8 -> 16

    def test_loss_halves_once_per_rtt(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=64, max_cwnd=64)
        tcp.start()
        spec.flow.stats.queue_drops = 100  # many losses, one RTT
        loop.run_until(MSEC)
        assert tcp.cwnd == 32
        assert tcp.decreases == 1

    def test_ecn_mark_triggers_decrease(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=64, max_cwnd=64)
        tcp.start()
        tcp.on_ecn_mark(1, 0)
        loop.run_until(MSEC)
        assert tcp.cwnd == 32

    def test_congestion_avoidance_additive(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=10, max_cwnd=100,
                      ssthresh=10)
        tcp.start()
        loop.run_until(5 * MSEC)
        assert tcp.cwnd == 15  # +1 per RTT above ssthresh

    def test_cwnd_floor_is_one(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=1, max_cwnd=10)
        tcp.start()
        for i in range(5):
            spec.flow.stats.queue_drops += 1
            loop.run_until((i + 1) * MSEC)
        assert tcp.cwnd == 1.0

    def test_rate_tracks_cwnd(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec, rtt_ns=MSEC, init_cwnd=100, max_cwnd=100)
        # 100 packets per 1 ms RTT = 100 kpps.
        assert spec.rate_pps == pytest.approx(1e5)
        assert tcp.rate_bps == pytest.approx(1e5 * 1500 * 8)

    def test_flow_backref(self, loop):
        spec = self._spec(loop)
        tcp = TCPFlow(loop, spec)
        assert spec.flow.tcp is tcp


class TestArrivalModels:
    """Heavy-tailed/bursty models: PR 4's batch + RNG-rewind contract."""

    MODELS = ("pareto_onoff", "mmpp", "flash_crowd")
    TICK = 100 * USEC

    def _counts_scalar(self, pattern, seed, n_ticks, rate=100_000.0,
                       rate_change=None):
        """Reference stream: one unbatched draw per tick."""
        rng = np.random.default_rng(seed)
        spec = FlowSpec(Flow("f"), rate, pattern=pattern)
        out = []
        for i in range(n_ticks):
            if rate_change is not None and i == rate_change[0]:
                spec.rate_pps = rate_change[1]
            out.append(spec.packets_this_tick(self.TICK, rng))
        return out

    def _counts_batched(self, pattern, seed, n_ticks, rate=100_000.0,
                        rate_change=None):
        """Same stream served through the 256-tick batch machinery."""
        rng = np.random.default_rng(seed)
        spec = FlowSpec(Flow("f"), rate, pattern=pattern)
        out = []
        for i in range(n_ticks):
            if rate_change is not None and i == rate_change[0]:
                spec.rate_pps = rate_change[1]
            out.append(spec.next_count(self.TICK, rng, rng_batch=True))
        return out

    @pytest.mark.parametrize("pattern", MODELS)
    def test_batched_matches_scalar(self, pattern):
        scalar = self._counts_scalar(pattern, seed=7, n_ticks=1000)
        batched = self._counts_batched(pattern, seed=7, n_ticks=1000)
        assert batched == scalar
        assert sum(scalar) > 0

    @pytest.mark.parametrize("pattern", MODELS)
    def test_rate_change_rewinds_rng_and_model_exactly(self, pattern):
        """A mid-batch rate change (tick 137, deep inside the first
        256-tick batch) rewinds the RNG *and* the model state to the
        batch start and replays the consumed prefix: the emitted stream
        still matches per-tick scalar draws bit for bit."""
        change = (137, 250_000.0)
        scalar = self._counts_scalar(pattern, seed=11, n_ticks=1000,
                                     rate_change=change)
        batched = self._counts_batched(pattern, seed=11, n_ticks=1000,
                                       rate_change=change)
        assert batched == scalar

    @pytest.mark.parametrize("pattern", MODELS)
    def test_rerun_is_bit_identical(self, pattern):
        a = self._counts_batched(pattern, seed=3, n_ticks=600)
        b = self._counts_batched(pattern, seed=3, n_ticks=600)
        assert a == b
        assert a != self._counts_batched(pattern, seed=4, n_ticks=600)

    @pytest.mark.parametrize("pattern", MODELS)
    def test_snapshot_restore_replays_identically(self, pattern):
        from repro.traffic.arrivals import make_arrival_model

        rng = np.random.default_rng(5)
        model = make_arrival_model(pattern)
        model.draw(100_000.0, self.TICK, 300, rng)   # advance into a phase
        state = model.snapshot()
        rng_state = rng.bit_generator.state
        first = model.draw(100_000.0, self.TICK, 200, rng)
        model.restore(state)
        rng.bit_generator.state = rng_state
        again = model.draw(100_000.0, self.TICK, 200, rng)
        assert first == again

    def test_mmpp_long_run_mean_matches_rate(self):
        # 2 simulated seconds at 100 kpps: the normalised intensity
        # factors must keep the long-run average at rate_pps.
        counts = self._counts_batched("mmpp", seed=1, n_ticks=20_000)
        assert sum(counts) == pytest.approx(200_000, rel=0.15)

    def test_pareto_onoff_silent_while_off(self):
        counts = self._counts_batched("pareto_onoff", seed=2, n_ticks=5000)
        assert 0 in counts           # OFF phases exist
        assert max(counts) > 100_000 * self.TICK / 1e9  # boosted ON rate

    def test_flash_crowd_envelope_shape(self):
        from repro.traffic.arrivals import FlashCrowd

        model = FlashCrowd(start_s=0.01, ramp_s=0.01, hold_s=0.02,
                           peak_factor=5.0)
        assert model.factor_at(0.0) == 1.0
        assert model.factor_at(0.015) == pytest.approx(3.0)   # mid-ramp
        assert model.factor_at(0.025) == 5.0                  # hold
        assert model.factor_at(1.0) == 1.0                    # decayed

    def test_unknown_pattern_raises(self):
        from repro.traffic.arrivals import make_arrival_model

        with pytest.raises(ValueError):
            make_arrival_model("fractal_noise")
        with pytest.raises(ValueError):
            FlowSpec(Flow("f"), 1000, pattern="fractal_noise")

    def test_model_params_validation(self):
        from repro.traffic.arrivals import MMPP

        spec = FlowSpec(Flow("f"), 1000, pattern="flash_crowd",
                        model_params={"peak_factor": 8.0})
        assert spec.model.peak_factor == 8.0
        with pytest.raises(ValueError):
            FlowSpec(Flow("f"), 1000, pattern="cbr",
                     model_params={"peak_factor": 8.0})
        with pytest.raises(ValueError):
            FlowSpec(Flow("f"), 1000, model=MMPP(),
                     model_params={"low_factor": 0.1})

    def test_model_instance_sets_pattern_name(self):
        from repro.traffic.arrivals import ParetoOnOff

        spec = FlowSpec(Flow("f"), 1000, model=ParetoOnOff(alpha=1.2))
        assert spec.pattern == "pareto_onoff"

    def test_generator_disables_batching_with_two_rng_consumers(self, loop):
        nic = NIC()
        gen = TrafficGenerator(loop, nic, tick_ns=100 * USEC)
        gen.add_flow(Flow("a"), rate_pps=1e5, pattern="mmpp")
        assert gen._rng_batch
        gen.add_flow(Flow("b"), rate_pps=1e5, pattern="poisson")
        assert not gen._rng_batch
        gen.add_flow(Flow("c"), rate_pps=1e5)      # CBR never counts
        assert not gen._rng_batch
