"""Property-based tests of the scheduling engine.

Random interleavings of wakes, interrupts and time must never violate the
core's structural invariants: task-state consistency, non-negative
accounting, and work conservation.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.base import CoreTask, ExecOutcome, ExecResult, TaskState
from repro.sched.cfs import CFSBatchScheduler, CFSScheduler
from repro.sched.core import Core
from repro.sched.rr import RRScheduler
from repro.sim.clock import MSEC, USEC
from repro.sim.engine import EventLoop


class RandomWorkTask(CoreTask):
    """Work arrives in chunks pushed by the driver."""

    def __init__(self, name):
        super().__init__(name)
        self.pending_ns = 0.0
        self.done_ns = 0.0

    def push(self, work_ns):
        self.pending_ns += work_ns

    def estimate_run_ns(self, now_ns):
        return self.pending_ns

    def execute(self, now_ns, granted_ns):
        take = min(granted_ns, self.pending_ns)
        self.pending_ns -= take
        self.done_ns += take
        if self.pending_ns > 1e-9:
            return ExecResult(take, ExecOutcome.USED_ALL)
        return ExecResult(take, ExecOutcome.RAN_OUT)


SCHEDULERS = [CFSScheduler, CFSBatchScheduler,
              lambda: RRScheduler(quantum_ns=MSEC)]


@given(
    sched_idx=st.integers(0, 2),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["push", "advance", "interrupt", "block_ready"]),
            st.integers(0, 2),          # which task
            st.integers(1, 2000),       # magnitude (us of work / advance)
        ),
        min_size=1, max_size=60,
    ),
)
@settings(max_examples=120, deadline=None)
def test_core_invariants_under_random_operations(sched_idx, ops):
    loop = EventLoop()
    core = Core(loop, SCHEDULERS[sched_idx](), ctx_switch_ns=500.0)
    tasks = [RandomWorkTask(f"t{i}") for i in range(3)]
    for t in tasks:
        core.add_task(t)

    for op, idx, magnitude in ops:
        task = tasks[idx]
        if op == "push":
            task.push(magnitude * USEC / 10)
            core.wake(task)
        elif op == "advance":
            loop.run_until(loop.now + magnitude * USEC)
        elif op == "interrupt":
            core.interrupt_current(voluntary=bool(magnitude % 2))
        elif op == "block_ready":
            core.block_ready(task)

        # --- invariants after every operation -------------------------
        running = [t for t in tasks if t.state is TaskState.RUNNING]
        assert len(running) <= 1
        if core.current is not None:
            assert core.current.state is TaskState.RUNNING
            assert core.current in tasks
        for t in tasks:
            if t.state is TaskState.READY:
                assert t.sched_node is not None
            elif t.state is TaskState.BLOCKED:
                assert t.sched_node is None
            assert t.stats.runtime_ns >= 0
            assert t.stats.sched_delay_ns >= 0
            assert t.pending_ns >= -1e-6

    # Drain everything; all pushed work eventually completes.
    loop.run_until(loop.now + 500 * MSEC)
    for t in tasks:
        core.wake(t)
    loop.run_until(loop.now + 500 * MSEC)
    for t in tasks:
        assert t.pending_ns <= 1e-6
        # Runtime charged is at least the work completed.
        assert t.stats.runtime_ns >= t.done_ns - 1e-6


class Greedy(CoreTask):
    """Always-runnable task: consumes every granted nanosecond."""

    def estimate_run_ns(self, now_ns):
        return math.inf

    def execute(self, now_ns, granted_ns):
        return ExecResult(granted_ns, ExecOutcome.USED_ALL)


@given(
    sched_idx=st.integers(0, 2),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["push", "advance", "interrupt", "block_ready"]),
            st.integers(0, 2),
            st.integers(1, 2000),
        ),
        min_size=1, max_size=50,
    ),
)
@settings(max_examples=80, deadline=None)
def test_vruntime_monotonic_per_task(sched_idx, ops):
    """A task's vruntime never decreases: ``charge`` only adds, and the
    sleeper-fairness placement only ever *raises* a stale vruntime."""
    loop = EventLoop()
    core = Core(loop, SCHEDULERS[sched_idx](), ctx_switch_ns=500.0)
    tasks = [RandomWorkTask(f"t{i}") for i in range(3)]
    for t in tasks:
        core.add_task(t)
    last_vruntime = {t.name: t.vruntime for t in tasks}

    for op, idx, magnitude in ops:
        task = tasks[idx]
        if op == "push":
            task.push(magnitude * USEC / 10)
            core.wake(task)
        elif op == "advance":
            loop.run_until(loop.now + magnitude * USEC)
        elif op == "interrupt":
            core.interrupt_current(voluntary=bool(magnitude % 2))
        elif op == "block_ready":
            core.block_ready(task)
        for t in tasks:
            assert t.vruntime >= last_vruntime[t.name] - 1e-9, \
                f"{t.name} vruntime went backwards"
            last_vruntime[t.name] = t.vruntime


@given(
    n_tasks=st.integers(2, 5),
    quantum_ms=st.integers(1, 100),
    horizon_ms=st.integers(200, 600),
)
@settings(max_examples=40, deadline=None)
def test_rr_quantum_accounting(n_tasks, quantum_ms, horizon_ms):
    """RR grants exactly one fixed quantum per dispatch: greedy equal
    tasks are all involuntarily switched, never run longer than a quantum
    at a stretch, and end within one quantum of each other."""
    loop = EventLoop()
    quantum_ns = quantum_ms * MSEC
    core = Core(loop, RRScheduler(quantum_ns=quantum_ns), ctx_switch_ns=0.0)
    tasks = [Greedy(f"t{i}") for i in range(n_tasks)]
    for t in tasks:
        core.add_task(t)
        core.wake(t)
    loop.run_until(horizon_ms * MSEC)

    total = sum(t.stats.runtime_ns for t in tasks)
    assert total > 0
    # Work conservation: greedy tasks leave no idle time on the core.
    assert abs(total - horizon_ms * MSEC) < quantum_ns + 1
    for t in tasks:
        # Weights are ignored and the quantum is fixed, so runtime is the
        # quantum times the number of completed turns: per-task runtimes
        # can differ only by one quantum of round-robin phase.
        assert t.stats.runtime_ns <= total / n_tasks + quantum_ns + 1
        assert t.stats.runtime_ns >= total / n_tasks - quantum_ns - 1
        # Greedy tasks never block: every switch is involuntary.
        assert t.stats.voluntary_switches == 0
        assert t.stats.involuntary_switches >= int(
            t.stats.runtime_ns // quantum_ns)


@given(
    weights=st.lists(st.integers(2, 8192), min_size=2, max_size=5),
    horizon_ms=st.integers(100, 500),
)
@settings(max_examples=40, deadline=None)
def test_cfs_vruntime_accrues_at_1024_over_weight(weights, horizon_ms):
    """vruntime accrual is wall runtime scaled by exactly
    ``NICE_0_WEIGHT / weight`` — the contract NFVnice's cgroup writes
    rely on to steer CFS."""
    from repro.sched.cfs import NICE_0_WEIGHT

    loop = EventLoop()
    core = Core(loop, CFSScheduler(), ctx_switch_ns=0.0)
    tasks = [Greedy(f"t{i}", weight=w) for i, w in enumerate(weights)]
    for t in tasks:
        core.add_task(t)
        core.wake(t)
    loop.run_until(horizon_ms * MSEC)
    for t in tasks:
        if t.stats.runtime_ns == 0:
            continue
        expected = t.stats.runtime_ns * NICE_0_WEIGHT / t.weight
        # Tolerance covers float accumulation across many charge() calls,
        # not any modelling slack — the ratio itself must be exact.
        assert abs(t.vruntime - expected) <= 1e-6 * max(expected, 1.0), (
            f"{t.name} (weight {t.weight}): vruntime {t.vruntime} != "
            f"runtime*1024/weight {expected}")


@given(
    weights=st.lists(st.integers(2, 8192), min_size=2, max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_cfs_long_run_shares_proportional_to_weights(weights):
    """Always-runnable tasks receive CPU in weight proportion (± slack
    from discrete slices)."""
    loop = EventLoop()
    core = Core(loop, CFSScheduler(), ctx_switch_ns=0.0)
    tasks = [Greedy(f"t{i}", weight=w) for i, w in enumerate(weights)]
    for t in tasks:
        core.add_task(t)
        core.wake(t)
    loop.run_until(3_000 * MSEC)
    total_weight = sum(weights)
    total_runtime = sum(t.stats.runtime_ns for t in tasks)
    assert total_runtime > 0
    for t, w in zip(tasks, weights):
        expected = w / total_weight
        actual = t.stats.runtime_ns / total_runtime
        assert abs(actual - expected) < 0.08
