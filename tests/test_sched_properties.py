"""Property-based tests of the scheduling engine.

Random interleavings of wakes, interrupts and time must never violate the
core's structural invariants: task-state consistency, non-negative
accounting, and work conservation.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.base import CoreTask, ExecOutcome, ExecResult, TaskState
from repro.sched.cfs import CFSBatchScheduler, CFSScheduler
from repro.sched.core import Core
from repro.sched.rr import RRScheduler
from repro.sim.clock import MSEC, USEC
from repro.sim.engine import EventLoop


class RandomWorkTask(CoreTask):
    """Work arrives in chunks pushed by the driver."""

    def __init__(self, name):
        super().__init__(name)
        self.pending_ns = 0.0
        self.done_ns = 0.0

    def push(self, work_ns):
        self.pending_ns += work_ns

    def estimate_run_ns(self, now_ns):
        return self.pending_ns

    def execute(self, now_ns, granted_ns):
        take = min(granted_ns, self.pending_ns)
        self.pending_ns -= take
        self.done_ns += take
        if self.pending_ns > 1e-9:
            return ExecResult(take, ExecOutcome.USED_ALL)
        return ExecResult(take, ExecOutcome.RAN_OUT)


SCHEDULERS = [CFSScheduler, CFSBatchScheduler,
              lambda: RRScheduler(quantum_ns=MSEC)]


@given(
    sched_idx=st.integers(0, 2),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["push", "advance", "interrupt", "block_ready"]),
            st.integers(0, 2),          # which task
            st.integers(1, 2000),       # magnitude (us of work / advance)
        ),
        min_size=1, max_size=60,
    ),
)
@settings(max_examples=120, deadline=None)
def test_core_invariants_under_random_operations(sched_idx, ops):
    loop = EventLoop()
    core = Core(loop, SCHEDULERS[sched_idx](), ctx_switch_ns=500.0)
    tasks = [RandomWorkTask(f"t{i}") for i in range(3)]
    for t in tasks:
        core.add_task(t)

    for op, idx, magnitude in ops:
        task = tasks[idx]
        if op == "push":
            task.push(magnitude * USEC / 10)
            core.wake(task)
        elif op == "advance":
            loop.run_until(loop.now + magnitude * USEC)
        elif op == "interrupt":
            core.interrupt_current(voluntary=bool(magnitude % 2))
        elif op == "block_ready":
            core.block_ready(task)

        # --- invariants after every operation -------------------------
        running = [t for t in tasks if t.state is TaskState.RUNNING]
        assert len(running) <= 1
        if core.current is not None:
            assert core.current.state is TaskState.RUNNING
            assert core.current in tasks
        for t in tasks:
            if t.state is TaskState.READY:
                assert t.sched_node is not None
            elif t.state is TaskState.BLOCKED:
                assert t.sched_node is None
            assert t.stats.runtime_ns >= 0
            assert t.stats.sched_delay_ns >= 0
            assert t.pending_ns >= -1e-6

    # Drain everything; all pushed work eventually completes.
    loop.run_until(loop.now + 500 * MSEC)
    for t in tasks:
        core.wake(t)
    loop.run_until(loop.now + 500 * MSEC)
    for t in tasks:
        assert t.pending_ns <= 1e-6
        # Runtime charged is at least the work completed.
        assert t.stats.runtime_ns >= t.done_ns - 1e-6


@given(
    weights=st.lists(st.integers(2, 8192), min_size=2, max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_cfs_long_run_shares_proportional_to_weights(weights):
    """Always-runnable tasks receive CPU in weight proportion (± slack
    from discrete slices)."""

    class Greedy(CoreTask):
        def estimate_run_ns(self, now_ns):
            return math.inf

        def execute(self, now_ns, granted_ns):
            return ExecResult(granted_ns, ExecOutcome.USED_ALL)

    loop = EventLoop()
    core = Core(loop, CFSScheduler(), ctx_switch_ns=0.0)
    tasks = [Greedy(f"t{i}", weight=w) for i, w in enumerate(weights)]
    for t in tasks:
        core.add_task(t)
        core.wake(t)
    loop.run_until(3_000 * MSEC)
    total_weight = sum(weights)
    total_runtime = sum(t.stats.runtime_ns for t in tasks)
    assert total_runtime > 0
    for t, w in zip(tasks, weights):
        expected = w / total_weight
        actual = t.stats.runtime_ns / total_runtime
        assert abs(actual - expected) < 0.08
