"""Property-based tests of the scheduling engine.

Random interleavings of wakes, interrupts and time must never violate the
core's structural invariants: task-state consistency, non-negative
accounting, and work conservation.
"""

import math
from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.base import CoreTask, ExecOutcome, ExecResult, TaskState
from repro.sched.cfs import CFSBatchScheduler, CFSScheduler
from repro.sched.core import Core
from repro.sched.deadline import DeadlineCFSScheduler
from repro.sched.edf import EDFScheduler
from repro.sched.rr import RRScheduler
from repro.sim.clock import MSEC, USEC
from repro.sim.engine import EventLoop


class RandomWorkTask(CoreTask):
    """Work arrives in chunks pushed by the driver."""

    def __init__(self, name):
        super().__init__(name)
        self.pending_ns = 0.0
        self.done_ns = 0.0

    def push(self, work_ns):
        self.pending_ns += work_ns

    def estimate_run_ns(self, now_ns):
        return self.pending_ns

    def execute(self, now_ns, granted_ns):
        take = min(granted_ns, self.pending_ns)
        self.pending_ns -= take
        self.done_ns += take
        if self.pending_ns > 1e-9:
            return ExecResult(take, ExecOutcome.USED_ALL)
        return ExecResult(take, ExecOutcome.RAN_OUT)


SCHEDULERS = [CFSScheduler, CFSBatchScheduler,
              lambda: RRScheduler(quantum_ns=MSEC),
              EDFScheduler, DeadlineCFSScheduler]


@given(
    sched_idx=st.integers(0, len(SCHEDULERS) - 1),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["push", "advance", "interrupt", "block_ready"]),
            st.integers(0, 2),          # which task
            st.integers(1, 2000),       # magnitude (us of work / advance)
        ),
        min_size=1, max_size=60,
    ),
)
@settings(max_examples=120, deadline=None)
def test_core_invariants_under_random_operations(sched_idx, ops):
    loop = EventLoop()
    core = Core(loop, SCHEDULERS[sched_idx](), ctx_switch_ns=500.0)
    tasks = [RandomWorkTask(f"t{i}") for i in range(3)]
    for t in tasks:
        core.add_task(t)

    for op, idx, magnitude in ops:
        task = tasks[idx]
        if op == "push":
            task.push(magnitude * USEC / 10)
            core.wake(task)
        elif op == "advance":
            loop.run_until(loop.now + magnitude * USEC)
        elif op == "interrupt":
            core.interrupt_current(voluntary=bool(magnitude % 2))
        elif op == "block_ready":
            core.block_ready(task)

        # --- invariants after every operation -------------------------
        running = [t for t in tasks if t.state is TaskState.RUNNING]
        assert len(running) <= 1
        if core.current is not None:
            assert core.current.state is TaskState.RUNNING
            assert core.current in tasks
        for t in tasks:
            if t.state is TaskState.READY:
                assert t.sched_node is not None
            elif t.state is TaskState.BLOCKED:
                assert t.sched_node is None
            assert t.stats.runtime_ns >= 0
            assert t.stats.sched_delay_ns >= 0
            assert t.pending_ns >= -1e-6

    # Drain everything; all pushed work eventually completes.
    loop.run_until(loop.now + 500 * MSEC)
    for t in tasks:
        core.wake(t)
    loop.run_until(loop.now + 500 * MSEC)
    for t in tasks:
        assert t.pending_ns <= 1e-6
        # Runtime charged is at least the work completed.
        assert t.stats.runtime_ns >= t.done_ns - 1e-6


class Greedy(CoreTask):
    """Always-runnable task: consumes every granted nanosecond."""

    def estimate_run_ns(self, now_ns):
        return math.inf

    def execute(self, now_ns, granted_ns):
        return ExecResult(granted_ns, ExecOutcome.USED_ALL)


@given(
    sched_idx=st.integers(0, len(SCHEDULERS) - 1),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["push", "advance", "interrupt", "block_ready"]),
            st.integers(0, 2),
            st.integers(1, 2000),
        ),
        min_size=1, max_size=50,
    ),
)
@settings(max_examples=80, deadline=None)
def test_vruntime_monotonic_per_task(sched_idx, ops):
    """A task's vruntime never decreases: ``charge`` only adds, and the
    sleeper-fairness placement only ever *raises* a stale vruntime."""
    loop = EventLoop()
    core = Core(loop, SCHEDULERS[sched_idx](), ctx_switch_ns=500.0)
    tasks = [RandomWorkTask(f"t{i}") for i in range(3)]
    for t in tasks:
        core.add_task(t)
    last_vruntime = {t.name: t.vruntime for t in tasks}

    for op, idx, magnitude in ops:
        task = tasks[idx]
        if op == "push":
            task.push(magnitude * USEC / 10)
            core.wake(task)
        elif op == "advance":
            loop.run_until(loop.now + magnitude * USEC)
        elif op == "interrupt":
            core.interrupt_current(voluntary=bool(magnitude % 2))
        elif op == "block_ready":
            core.block_ready(task)
        for t in tasks:
            assert t.vruntime >= last_vruntime[t.name] - 1e-9, \
                f"{t.name} vruntime went backwards"
            last_vruntime[t.name] = t.vruntime


@given(
    n_tasks=st.integers(2, 5),
    quantum_ms=st.integers(1, 100),
    horizon_ms=st.integers(200, 600),
)
@settings(max_examples=40, deadline=None)
def test_rr_quantum_accounting(n_tasks, quantum_ms, horizon_ms):
    """RR grants exactly one fixed quantum per dispatch: greedy equal
    tasks are all involuntarily switched, never run longer than a quantum
    at a stretch, and end within one quantum of each other."""
    loop = EventLoop()
    quantum_ns = quantum_ms * MSEC
    core = Core(loop, RRScheduler(quantum_ns=quantum_ns), ctx_switch_ns=0.0)
    tasks = [Greedy(f"t{i}") for i in range(n_tasks)]
    for t in tasks:
        core.add_task(t)
        core.wake(t)
    loop.run_until(horizon_ms * MSEC)

    total = sum(t.stats.runtime_ns for t in tasks)
    assert total > 0
    # Work conservation: greedy tasks leave no idle time on the core.
    assert abs(total - horizon_ms * MSEC) < quantum_ns + 1
    for t in tasks:
        # Weights are ignored and the quantum is fixed, so runtime is the
        # quantum times the number of completed turns: per-task runtimes
        # can differ only by one quantum of round-robin phase.
        assert t.stats.runtime_ns <= total / n_tasks + quantum_ns + 1
        assert t.stats.runtime_ns >= total / n_tasks - quantum_ns - 1
        # Greedy tasks never block: every switch is involuntary.
        assert t.stats.voluntary_switches == 0
        assert t.stats.involuntary_switches >= int(
            t.stats.runtime_ns // quantum_ns)


@given(
    weights=st.lists(st.integers(2, 8192), min_size=2, max_size=5),
    horizon_ms=st.integers(100, 500),
)
@settings(max_examples=40, deadline=None)
def test_cfs_vruntime_accrues_at_1024_over_weight(weights, horizon_ms):
    """vruntime accrual is wall runtime scaled by exactly
    ``NICE_0_WEIGHT / weight`` — the contract NFVnice's cgroup writes
    rely on to steer CFS."""
    from repro.sched.cfs import NICE_0_WEIGHT

    loop = EventLoop()
    core = Core(loop, CFSScheduler(), ctx_switch_ns=0.0)
    tasks = [Greedy(f"t{i}", weight=w) for i, w in enumerate(weights)]
    for t in tasks:
        core.add_task(t)
        core.wake(t)
    loop.run_until(horizon_ms * MSEC)
    for t in tasks:
        if t.stats.runtime_ns == 0:
            continue
        expected = t.stats.runtime_ns * NICE_0_WEIGHT / t.weight
        # Tolerance covers float accumulation across many charge() calls,
        # not any modelling slack — the ratio itself must be exact.
        assert abs(t.vruntime - expected) <= 1e-6 * max(expected, 1.0), (
            f"{t.name} (weight {t.weight}): vruntime {t.vruntime} != "
            f"runtime*1024/weight {expected}")


@given(
    weights=st.lists(st.integers(2, 8192), min_size=2, max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_cfs_long_run_shares_proportional_to_weights(weights):
    """Always-runnable tasks receive CPU in weight proportion (± slack
    from discrete slices)."""
    loop = EventLoop()
    core = Core(loop, CFSScheduler(), ctx_switch_ns=0.0)
    tasks = [Greedy(f"t{i}", weight=w) for i, w in enumerate(weights)]
    for t in tasks:
        core.add_task(t)
        core.wake(t)
    loop.run_until(3_000 * MSEC)
    total_weight = sum(weights)
    total_runtime = sum(t.stats.runtime_ns for t in tasks)
    assert total_runtime > 0
    for t, w in zip(tasks, weights):
        expected = w / total_weight
        actual = t.stats.runtime_ns / total_runtime
        assert abs(actual - expected) < 0.08


# ----------------------------------------------------------------------
# EDF: deadline-order dispatch and no starvation under inheritance
# ----------------------------------------------------------------------
class DeadlinePacketTask(CoreTask):
    """NF-shaped task: a FIFO ring of packet origins plus an SLO budget.

    Mirrors ``NFProcess.deadline_ns``: the deadline is the *head*
    packet's origin plus this task's SLO — inherited end-to-end, since
    origins are stamped once and never rewritten.
    """

    def __init__(self, name, slo_ns, service_ns=50 * USEC):
        super().__init__(name)
        self.slo_ns = int(slo_ns)
        self.service_ns = float(service_ns)
        self.origins = deque()
        self.completed = []
        self._head_done = 0.0

    def deadline_ns(self, now_ns, default_slo_ns):
        if not self.origins:
            return None
        return self.origins[0] + self.slo_ns

    def push(self, origin_ns):
        self.origins.append(int(origin_ns))

    def estimate_run_ns(self, now_ns):
        if not self.origins:
            return 0.0
        return len(self.origins) * self.service_ns - self._head_done

    def execute(self, now_ns, granted_ns):
        used = 0.0
        while self.origins and (used + self.service_ns - self._head_done
                                <= granted_ns + 1e-9):
            used += self.service_ns - self._head_done
            self._head_done = 0.0
            self.completed.append((self.origins.popleft(), now_ns))
        if self.origins:
            left = granted_ns - used
            if left > 1e-9:
                self._head_done += left
                used = granted_ns
            return ExecResult(used, ExecOutcome.USED_ALL)
        return ExecResult(used, ExecOutcome.RAN_OUT)


@given(deadlines=st.lists(st.integers(0, 10 ** 9), min_size=1, max_size=40))
@settings(max_examples=120, deadline=None)
def test_edf_dispatch_follows_deadline_order(deadlines):
    """pick_next drains the runqueue in non-decreasing deadline order,
    and every stamped key is an exact integer (no float contamination)."""
    sched = EDFScheduler()
    for i, origin in enumerate(deadlines):
        task = DeadlinePacketTask(f"t{i}", slo_ns=1)
        task.push(origin)
        sched.enqueue(task, now_ns=0, wakeup=True)
    picked = []
    while True:
        task = sched.pick_next(0)
        if task is None:
            break
        assert isinstance(task.edf_deadline_ns, int)
        picked.append(task.edf_deadline_ns)
    assert picked == sorted(picked)
    assert len(picked) == len(deadlines)
    assert sched.nr_ready == 0


@given(
    slos_ms=st.lists(st.integers(1, 50), min_size=2, max_size=4),
    pushes=st.lists(
        st.tuples(
            st.integers(0, 3),        # which task (mod len)
            st.integers(0, 2000),     # arrival offset (us)
            st.integers(1, 8),        # packets in the burst
        ),
        min_size=1, max_size=40,
    ),
)
@settings(max_examples=60, deadline=None)
def test_edf_no_starvation_under_deadline_inheritance(slos_ms, pushes):
    """Every packet pushed to any task eventually completes: inherited
    deadlines are fixed at enqueue while later arrivals' origins only
    grow, so no task's key stays above the rest forever."""
    loop = EventLoop()
    core = Core(loop, EDFScheduler(default_slo_ns=10 * MSEC),
                ctx_switch_ns=500.0)
    tasks = [DeadlinePacketTask(f"t{i}", slo_ns=ms * MSEC)
             for i, ms in enumerate(slos_ms)]
    for t in tasks:
        core.add_task(t)

    total = 0
    for idx, offset_us, burst in sorted(pushes, key=lambda p: p[1]):
        loop.run_until(offset_us * USEC)
        task = tasks[idx % len(tasks)]
        for _ in range(burst):
            task.push(loop.now)
        total += burst
        core.wake(task)

    # Drain: ample horizon, re-wake in case a wake was lost.
    loop.run_until(loop.now + 200 * MSEC)
    for t in tasks:
        core.wake(t)
    loop.run_until(loop.now + 200 * MSEC)
    for t in tasks:
        assert not t.origins, f"{t.name} starved with {len(t.origins)} left"
    assert sum(len(t.completed) for t in tasks) == total


def test_edf_wake_preempts_on_earlier_deadline():
    """A woken task holding an earlier inherited deadline preempts the
    running one instead of waiting out its backlog."""
    loop = EventLoop()
    core = Core(loop, EDFScheduler(default_slo_ns=10 * MSEC),
                ctx_switch_ns=0.0)
    late = DeadlinePacketTask("late", slo_ns=50 * MSEC, service_ns=100 * USEC)
    early = DeadlinePacketTask("early", slo_ns=100 * USEC,
                               service_ns=10 * USEC)
    core.add_task(late)
    core.add_task(early)
    for _ in range(100):            # 10 ms of backlog
        late.push(0)
    core.wake(late)
    loop.run_until(200 * USEC)
    assert core.current is late

    early.push(loop.now)
    core.wake(early)
    loop.run_until(loop.now + 50 * USEC)
    assert early.completed, "earlier deadline did not jump the line"
    assert late.origins, "late backlog should still be pending"
