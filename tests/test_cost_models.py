"""Unit + property tests for per-packet cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nfs.cost_models import (
    ChoiceCost,
    ExponentialCost,
    FixedCost,
    NormalCost,
    UniformCost,
    WithOverhead,
)


def rng():
    return np.random.default_rng(0)


class TestFixedCost:
    def test_peek_and_consume(self):
        m = FixedCost(100)
        assert m.peek_sum(5) == 500
        assert m.consume(3) == 300
        assert m.mean_cycles == 100

    def test_consume_upto(self):
        m = FixedCost(100)
        assert m.consume_upto(350, 10) == (3, 300)
        assert m.consume_upto(99, 10) == (0, 0.0)
        assert m.consume_upto(1000, 2) == (2, 200)

    def test_invalid(self):
        with pytest.raises(ValueError):
            FixedCost(0)


class TestChoiceCost:
    def test_values_from_set(self):
        m = ChoiceCost((120, 270, 550), rng=rng())
        total = m.consume(1)
        assert total in (120, 270, 550)

    def test_mean(self):
        m = ChoiceCost((100, 300), probabilities=(0.5, 0.5), rng=rng())
        assert m.mean_cycles == 200

    def test_long_run_mean(self):
        m = ChoiceCost((120, 270, 550), rng=rng())
        total = m.consume(30_000)
        assert total / 30_000 == pytest.approx(m.mean_cycles, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChoiceCost((0, 100))
        with pytest.raises(ValueError):
            ChoiceCost((1, 2), probabilities=(0.5,))
        with pytest.raises(ValueError):
            ChoiceCost((1, 2), probabilities=(0.9, 0.3))


class TestStochasticModels:
    @pytest.mark.parametrize("model,mean", [
        (NormalCost(500, 50, rng=rng()), 500),
        (UniformCost(100, 300, rng=rng()), 200),
        (ExponentialCost(800, rng=rng()), 800),
    ])
    def test_long_run_means(self, model, mean):
        total = model.consume(50_000)
        assert total / 50_000 == pytest.approx(mean, rel=0.05)

    def test_costs_clamped_positive(self):
        m = NormalCost(5, 100, rng=rng())  # heavy negative tail
        assert m.peek_sum(1000) >= 1000  # every packet >= 1 cycle

    def test_validation(self):
        with pytest.raises(ValueError):
            NormalCost(-1, 1)
        with pytest.raises(ValueError):
            UniformCost(10, 5)
        with pytest.raises(ValueError):
            ExponentialCost(0)


class TestBufferedDiscipline:
    """The contract the Core's run planner depends on: peeked == consumed."""

    def test_peek_equals_consume(self):
        m = ChoiceCost((120, 270, 550), rng=rng())
        peeked = m.peek_sum(100)
        consumed = m.consume(100)
        assert peeked == pytest.approx(consumed)

    def test_peek_is_idempotent(self):
        m = ExponentialCost(500, rng=rng())
        assert m.peek_sum(64) == m.peek_sum(64)

    def test_consume_upto_never_exceeds_budget(self):
        m = ChoiceCost((120, 270, 550), rng=rng())
        for budget in (0, 100, 119, 120, 1000, 12345):
            k, used = m.consume_upto(budget, 32)
            assert used <= budget
            assert 0 <= k <= 32

    def test_consume_upto_is_maximal(self):
        """Stopping early would under-use the grant: the next packet must
        not have fit."""
        m = ChoiceCost((120, 270, 550), rng=rng())
        budget = 5000.0
        k, used = m.consume_upto(budget, 32)
        if k < 32:
            next_cost = m.peek_sum(1)
            assert used + next_cost > budget

    @given(st.integers(1, 2000))
    @settings(max_examples=50, deadline=None)
    def test_buffer_compaction_consistency(self, n):
        m = UniformCost(50, 150, rng=np.random.default_rng(n))
        total = 0.0
        remaining = n
        while remaining:
            step = min(remaining, 97)
            total += m.consume(step)
            remaining -= step
        assert 50 * n <= total <= 150 * n


class TestWithOverhead:
    def test_fixed_inner(self):
        m = WithOverhead(FixedCost(100), 50)
        assert m.peek_sum(4) == 600
        assert m.mean_cycles == 150

    def test_consume_upto_accounts_overhead(self):
        m = WithOverhead(FixedCost(100), 50)
        k, used = m.consume_upto(460, 10)
        assert k == 3
        assert used == pytest.approx(450)

    def test_stochastic_inner_consistency(self):
        m = WithOverhead(ChoiceCost((120, 550), rng=rng()), 100)
        peeked = m.peek_sum(10)
        consumed = m.consume(10)
        assert peeked == pytest.approx(consumed)

    def test_budget_respected(self):
        m = WithOverhead(ChoiceCost((120, 270, 550), rng=rng()), 100)
        k, used = m.consume_upto(3000, 32)
        assert used <= 3000

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            WithOverhead(FixedCost(1), -1)


class TestCatalog:
    def test_catalog_costs(self, config):
        from repro.nfs.catalog import (
            make_bridge, make_dpi, make_encryptor, make_firewall,
            make_misbehaving, make_monitor,
        )

        assert make_bridge(config=config).cost_model.mean_cycles == 120
        assert make_monitor(config=config).cost_model.mean_cycles == 270
        assert make_firewall(config=config).cost_model.mean_cycles == 550
        assert make_dpi(config=config).cost_model.mean_cycles == 2200
        assert make_encryptor(config=config).cost_model.mean_cycles == 4500
        assert make_misbehaving(config=config).busy_loop

    def test_overhead_wrapping(self):
        """With framework overhead configured, catalog NFs fold it into
        their effective cost model."""
        from repro.nfs.catalog import make_bridge
        from repro.platform.config import PlatformConfig

        cfg = PlatformConfig(nf_overhead_cycles=100.0)
        nf = make_bridge(config=cfg)
        assert nf.cost_model.mean_cycles == 220
