"""Tests for the libnf developer API and callback NFs."""

import pytest

from repro.core.io import DiskDevice
from repro.core.libnf import CallbackNF, LibnfAPI
from repro.nfs.cost_models import FixedCost
from repro.platform.chain import ServiceChain
from repro.platform.packet import Flow
from repro.sim.clock import MSEC, SEC


def forward_all(api, flow, count, now):
    return count


class TestCallbackNF:
    def test_forwarding_handler(self, config):
        nf = CallbackNF("fw", FixedCost(260), forward_all, config=config)
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        nf.execute(0, SEC)
        assert len(nf.tx_ring) == 10
        assert nf.dropped_by_handler == 0

    def test_firewall_drop_handler(self, config):
        def deny_evil(api, flow, count, now):
            return 0 if flow.flow_id == "evil" else count

        nf = CallbackNF("fw", FixedCost(260), deny_evil, config=config)
        nf.rx_ring.enqueue(Flow("good"), 10, 0)
        nf.rx_ring.enqueue(Flow("evil"), 5, 1)
        nf.execute(0, SEC)
        assert len(nf.tx_ring) == 10
        assert nf.dropped_by_handler == 5

    def test_partial_forward(self, config):
        nf = CallbackNF("sampler", FixedCost(260),
                        lambda api, f, n, t: n // 2, config=config)
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        nf.execute(0, SEC)
        assert len(nf.tx_ring) == 5

    def test_handler_return_clamped(self, config):
        nf = CallbackNF("weird", FixedCost(260),
                        lambda api, f, n, t: n + 100, config=config)
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        nf.execute(0, SEC)
        assert len(nf.tx_ring) == 10

    def test_chain_accounting_still_applies(self, config):
        nf = CallbackNF("fw", FixedCost(260), forward_all, config=config)
        chain = ServiceChain("c", [nf])
        f = Flow("f")
        f.chain = chain
        nf.rx_ring.enqueue(f, 4, 0)
        nf.execute(0, SEC)
        assert nf.processed_by_chain == {"c": 4}


class TestLibnfAPI:
    def test_write_pkt(self, config):
        nf = CallbackNF("nf", FixedCost(260), forward_all, config=config)
        accepted = nf.api.write_pkt(Flow("f"), 3, now_ns=0)
        assert accepted == 3
        assert len(nf.tx_ring) == 3

    def test_storage_api_without_disk(self, config):
        nf = CallbackNF("nf", FixedCost(260), forward_all, config=config)
        assert nf.api.write_data(64, lambda ctx: None) == -1
        assert nf.api.read_data(64, lambda ctx: None) == -1

    def test_async_storage_callback_with_context(self, loop, config):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=1000)
        nf = CallbackNF("nf", FixedCost(260), forward_all, config=config,
                        disk=disk)
        seen = []
        assert nf.api.write_data(64, seen.append, context="flow-ctx") == 0
        loop.run()
        assert seen == ["flow-ctx"]
        assert nf.api.storage_writes == 1

    def test_read_data_counts(self, loop, config):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=1000)
        nf = CallbackNF("nf", FixedCost(260), forward_all, config=config,
                        disk=disk)
        nf.api.read_data(128, lambda ctx: None)
        assert nf.api.storage_reads == 1
