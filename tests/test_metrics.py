"""Unit + property tests for counters, histograms, series, fairness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.counters import Counter, PacketCounter
from repro.metrics.fairness import jain_index
from repro.metrics.histogram import CycleHistogram, SlidingWindowEstimator
from repro.metrics.report import format_value, render_table
from repro.metrics.timeseries import IntervalSampler, TimeSeries
from repro.sim.clock import MSEC, SEC
from repro.sim.engine import EventLoop


class TestCounters:
    def test_counter_accumulates(self):
        c = Counter("x")
        c.add()
        c.add(5)
        assert c.value == 6
        assert int(c) == 6

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_packet_counter(self):
        c = PacketCounter("rx")
        c.add(10, 640)
        assert (c.packets, c.bytes) == (10, 640)
        c.reset()
        assert (c.packets, c.bytes) == (0, 0)

    def test_packet_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            PacketCounter().add(-1, 0)


class TestCycleHistogram:
    def test_empty(self):
        h = CycleHistogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_mean_exact(self):
        h = CycleHistogram()
        for v in (100, 200, 300):
            h.add(v)
        assert h.mean == pytest.approx(200.0)
        assert h.min == 100
        assert h.max == 300

    def test_median_within_bucket_resolution(self):
        h = CycleHistogram(bins_per_octave=8)
        for v in (100,) * 50 + (1000,) * 49:
            h.add(v)
        # Median rank falls in the 100-cycle bucket.
        assert h.median() == pytest.approx(100, rel=0.15)

    def test_percentile_ordering(self):
        h = CycleHistogram()
        for v in range(1, 1000):
            h.add(float(v))
        assert h.percentile(10) <= h.percentile(50) <= h.percentile(95)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CycleHistogram().add(-1)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            CycleHistogram().percentile(101)

    def test_reset(self):
        h = CycleHistogram()
        h.add(50)
        h.reset()
        assert h.count == 0
        assert h.min is None

    @given(st.lists(st.floats(min_value=1, max_value=1e7), min_size=1,
                    max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_percentile_within_relative_error(self, values):
        """Log buckets: percentile estimates within one bucket width
        (~19 % for 4 bins/octave) of the true order statistic."""
        h = CycleHistogram(bins_per_octave=4)
        for v in values:
            h.add(v)
        import math

        true_median = sorted(values)[max(0, math.ceil(len(values) / 2) - 1)]
        estimate = h.median()
        assert estimate == pytest.approx(true_median, rel=0.25)


class TestSlidingWindow:
    def test_median_over_window(self):
        est = SlidingWindowEstimator(window_ns=100)
        for t, v in ((0, 10.0), (10, 30.0), (20, 20.0)):
            est.add(t, v)
        assert est.median(20) == 20.0

    def test_eviction_outside_window(self):
        est = SlidingWindowEstimator(window_ns=100)
        est.add(0, 999.0)
        est.add(200, 1.0)
        assert est.median(200) == 1.0
        assert len(est) == 1

    def test_even_count_median_interpolates(self):
        est = SlidingWindowEstimator(window_ns=1000)
        est.add(0, 10.0)
        est.add(1, 20.0)
        assert est.median(1) == 15.0

    def test_empty_returns_none(self):
        est = SlidingWindowEstimator(window_ns=100)
        assert est.median(0) is None
        assert est.mean(0) is None

    def test_warmup_discard(self):
        """The paper discards the first 10 samples (§4.3.8)."""
        est = SlidingWindowEstimator(window_ns=10 ** 9, warmup_discard=10)
        for i in range(10):
            est.add(i, 9999.0)
        assert est.median(9) is None
        est.add(10, 5.0)
        assert est.median(10) == 5.0

    def test_mean(self):
        est = SlidingWindowEstimator(window_ns=1000)
        est.add(0, 10.0)
        est.add(1, 30.0)
        assert est.mean(1) == 20.0


class TestJainIndex:
    def test_equal_allocations(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_winner(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1, -1])

    def test_paper_example_direction(self):
        """Fig 15b: the skewed default allocation scores far below the
        near-equal NFVnice one."""
        default = [1.02e6, 0.5e6, 0.3e6, 0.1e6, 0.08e6, 0.07e6]
        nfvnice = [80e3] * 6
        assert jain_index(default) < 0.7
        assert jain_index(nfvnice) == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1,
                    max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, values):
        j = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= j <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1,
                    max_size=30), st.floats(min_value=0.01, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance(self, values, scale):
        assert jain_index(values) == pytest.approx(
            jain_index([v * scale for v in values]), rel=1e-6)


class TestTimeSeries:
    def test_append_and_summary(self):
        ts = TimeSeries("x")
        for t, v in ((0, 1.0), (1, 3.0), (2, 2.0)):
            ts.append(t, v)
        assert ts.summary() == (2.0, 1.0, 3.0)
        assert ts.last() == 2.0
        assert len(ts) == 3

    def test_append_only(self):
        ts = TimeSeries("x")
        ts.append(10, 1.0)
        with pytest.raises(ValueError):
            ts.append(5, 2.0)

    def test_between(self):
        ts = TimeSeries("x")
        for t in range(10):
            ts.append(t, float(t))
        window = ts.between(3, 7)
        assert window.times == [3, 4, 5, 6]

    def test_empty_summary(self):
        assert TimeSeries("x").summary() == (0.0, 0.0, 0.0)


class TestIntervalSampler:
    def test_rate_probe(self):
        loop = EventLoop()
        counter = Counter()
        sampler = IntervalSampler(loop, SEC)
        sampler.add_probe("c", lambda: counter.value)
        sampler.start()
        # 1000 increments per simulated second via a periodic bump.
        from repro.sim.process import PeriodicProcess

        bump = PeriodicProcess(loop, MSEC, lambda: counter.add(1))
        bump.start()
        loop.run_until(3 * SEC)
        series = sampler["c"]
        assert len(series) == 3
        for _t, v in series:
            assert v == pytest.approx(1000.0, rel=0.01)

    def test_value_probe(self):
        loop = EventLoop()
        sampler = IntervalSampler(loop, SEC)
        sampler.add_probe("now", lambda: loop.now, rate=False)
        sampler.start()
        loop.run_until(2 * SEC)
        assert sampler["now"].values == [SEC, 2 * SEC]

    def test_duplicate_probe_rejected(self):
        sampler = IntervalSampler(EventLoop(), SEC)
        sampler.add_probe("x", lambda: 0)
        with pytest.raises(ValueError):
            sampler.add_probe("x", lambda: 0)


class TestReport:
    def test_format_value(self):
        assert format_value(1_500_000.0) == "1.5M"
        assert format_value(2_500.0) == "2.5K"
        assert format_value(3.25e9) == "3.25G"
        assert format_value(0.5) == "0.5"
        assert format_value(0) in ("0", "0.0")
        assert format_value(12345) == "12,345"
        assert format_value("text") == "text"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = out.splitlines()
        assert "=== T ===" in lines[1]
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows equally wide

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])
