"""Tests for the scheduler tracer and the analysis helpers."""

import json

import pytest

from repro.analysis.compare import compare_results
from repro.analysis.export import (
    load_result,
    load_result_dict,
    result_from_dict,
    result_to_dict,
    save_result,
    series_from_dict,
)
from repro.analysis.sparkline import render_series, sparkline
from repro.experiments.common import Scenario, build_linear_chain
from repro.metrics.timeseries import TimeSeries
from repro.sched.tracing import DISPATCH, SWITCH_OUT, WAKE, SchedTracer
from repro.sim.clock import MSEC, SEC


def small_result(features="NFVnice"):
    scenario = Scenario(scheduler="BATCH", features=features)
    build_linear_chain(scenario, (120, 550), core=0)
    scenario.add_flow("f", "chain", line_rate_fraction=0.5)
    return scenario.run(0.2)


class TestSchedTracer:
    def _traced_run(self):
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        build_linear_chain(scenario, (120, 550), core=0)
        scenario.add_flow("f", "chain", line_rate_fraction=0.5)
        tracer = SchedTracer()
        scenario.manager.core(0).tracer = tracer
        scenario.run(0.1)
        return tracer, scenario

    def test_records_all_event_kinds(self):
        tracer, _ = self._traced_run()
        kinds = {ev.kind for ev in tracer.events}
        assert {WAKE, DISPATCH, SWITCH_OUT} <= kinds
        assert len(tracer) > 10

    def test_runs_are_well_formed(self):
        tracer, _ = self._traced_run()
        runs = tracer.runs(core_id=0)
        assert runs
        for task, start, end, reason in runs:
            assert end >= start
            assert reason  # every close carries an outcome

    def test_traced_runtime_matches_task_accounting(self):
        tracer, scenario = self._traced_run()
        traced = tracer.runtime_by_task(core_id=0)
        for nf in scenario.manager.nfs:
            if nf.name in traced:
                # Traced wall intervals include context-switch overhead at
                # dispatch; allow a coarse tolerance.
                assert traced[nf.name] == pytest.approx(
                    nf.stats.runtime_ns, rel=0.2)

    def test_timeline_renders(self):
        tracer, _ = self._traced_run()
        art = tracer.render_timeline(0, int(0.1 * SEC), bucket_ns=5 * MSEC)
        lines = art.splitlines()
        assert lines
        for line in lines:
            assert "|" in line

    def test_timeline_validation(self):
        tracer = SchedTracer()
        with pytest.raises(ValueError):
            tracer.render_timeline(10, 10)

    def test_event_cap(self):
        tracer = SchedTracer(max_events=3)
        for i in range(5):
            tracer.record(i, 0, WAKE, "t")
        assert len(tracer) == 3
        assert tracer.dropped == 2

    def test_counts(self):
        tracer = SchedTracer()
        tracer.record(0, 0, WAKE, "a")
        tracer.record(1, 0, WAKE, "a")
        tracer.record(2, 0, DISPATCH, "a")
        assert tracer.counts() == {("a", WAKE): 2, ("a", DISPATCH): 1}

    def test_mismatched_switch_out_closes_run(self):
        """A SWITCH_OUT naming a different task must not silently discard
        the open run — it closes it flagged as a mismatch."""
        tracer = SchedTracer()
        tracer.record(0, 0, DISPATCH, "a")
        tracer.record(10, 0, SWITCH_OUT, "b")
        runs = tracer.runs(core_id=0)
        assert runs == [("a", 0, 10, "mismatch:b")]
        assert tracer.mismatched_runs(core_id=0) == 1
        # The flagged interval still counts toward the task's runtime.
        assert tracer.runtime_by_task(core_id=0) == {"a": 10}

    def test_double_dispatch_closes_run(self):
        tracer = SchedTracer()
        tracer.record(0, 0, DISPATCH, "a")
        tracer.record(5, 0, DISPATCH, "b")
        tracer.record(9, 0, SWITCH_OUT, "b")
        assert tracer.runs(core_id=0) == [
            ("a", 0, 5, "mismatch:b"), ("b", 5, 9, "")]

    def test_well_formed_trace_has_no_mismatches(self):
        tracer, _ = self._traced_run()
        assert tracer.mismatched_runs() == 0

    def test_dropped_events_surface_in_timeline(self):
        tracer = SchedTracer(max_events=2)
        tracer.record(0, 0, DISPATCH, "a")
        tracer.record(5, 0, SWITCH_OUT, "a")
        tracer.record(6, 0, DISPATCH, "a")
        art = tracer.render_timeline(0, 10, bucket_ns=5)
        assert "1 events dropped" in art


class TestMultiCoreTracing:
    def _two_core_run(self):
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        build_linear_chain(scenario, (120, 300, 550), core=(0, 1, 1))
        scenario.add_flow("f", "chain", line_rate_fraction=0.5)
        tracers = {}
        for core_id in (0, 1):
            tracers[core_id] = SchedTracer()
            scenario.manager.core(core_id).tracer = tracers[core_id]
        scenario.run(0.1)
        return tracers, scenario

    def test_each_core_traces_only_its_tasks(self):
        tracers, _ = self._two_core_run()
        assert {ev.task for ev in tracers[0].events} == {"nf1"}
        assert {ev.task for ev in tracers[1].events} == {"nf2", "nf3"}
        for core_id, tracer in tracers.items():
            assert all(ev.core_id == core_id for ev in tracer.events)

    def test_runtime_by_task_on_nonzero_core(self):
        tracers, scenario = self._two_core_run()
        traced = tracers[1].runtime_by_task(core_id=1)
        assert set(traced) == {"nf2", "nf3"}
        for name in ("nf2", "nf3"):
            nf = scenario.manager.nf_by_name(name)
            assert traced[name] == pytest.approx(nf.stats.runtime_ns, rel=0.2)

    def test_render_timeline_on_nonzero_core(self):
        tracers, _ = self._two_core_run()
        art = tracers[1].render_timeline(0, int(0.1 * SEC),
                                         bucket_ns=5 * MSEC, core_id=1)
        lines = art.splitlines()
        assert any(line.startswith("nf2") or line.lstrip().startswith("nf2")
                   for line in lines)
        assert all("|" in line for line in lines)

    def test_result_carries_trace_drop_count(self):
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        build_linear_chain(scenario, (120, 550), core=0)
        scenario.add_flow("f", "chain", line_rate_fraction=0.5)
        scenario.manager.core(0).tracer = SchedTracer(max_events=10)
        result = scenario.run(0.05)
        assert result.sched_trace_dropped > 0
        assert result_to_dict(result)["sched_trace_dropped"] == \
            result.sched_trace_dropped


class TestExport:
    def test_round_trip(self, tmp_path):
        result = small_result()
        path = save_result(result, tmp_path / "r.json")
        data = load_result_dict(path)
        assert data["scheduler"] == "BATCH"
        assert data["chains"]["chain"]["completed"] == \
            result.chain("chain").completed
        assert "series" in data

    def test_series_round_trip(self, tmp_path):
        result = small_result()
        data = result_to_dict(result)
        name = next(iter(data["series"]))
        ts = series_from_dict(data["series"][name], name)
        assert isinstance(ts, TimeSeries)
        assert list(ts.values) == data["series"][name]["values"]

    def test_without_series(self):
        data = result_to_dict(small_result(), include_series=False)
        assert "series" not in data
        json.dumps(data)  # fully JSON-serialisable

    def test_result_from_dict_round_trip(self):
        result = small_result()
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.scheduler == result.scheduler
        assert rebuilt.features == result.features
        assert rebuilt.duration_s == result.duration_s
        assert rebuilt.total_throughput_pps == result.total_throughput_pps
        assert rebuilt.sched_trace_dropped == result.sched_trace_dropped
        assert rebuilt.chains == result.chains
        assert rebuilt.nfs == result.nfs
        assert rebuilt.core_utilization == result.core_utilization
        assert set(rebuilt.series) == set(result.series)
        for name, ts in result.series.items():
            assert list(rebuilt.series[name].times) == list(ts.times)
            assert list(rebuilt.series[name].values) == list(ts.values)
        # A rebuilt result feeds the same analysis paths as a live one.
        assert "total throughput" in compare_results(
            rebuilt, result, "loaded", "live")

    def test_load_result(self, tmp_path):
        result = small_result()
        path = save_result(result, tmp_path / "r.json")
        loaded = load_result(path)
        assert loaded.chain("chain").completed == \
            result.chain("chain").completed
        assert loaded.nf("nf1").processed == result.nf("nf1").processed


class TestCompare:
    def test_comparison_table(self):
        base = small_result("Default")
        cand = small_result("NFVnice")
        table = compare_results(base, cand, "Default", "NFVnice")
        assert "total throughput" in table
        assert "NFVnice vs Default" in table
        assert "x" in table  # ratios rendered


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        out = sparkline([5, 5, 5])
        assert len(out) == 3
        assert len(set(out)) == 1

    def test_monotone_ramp(self):
        out = sparkline(list(range(9)))
        assert out[0] <= out[-1]
        assert len(out) == 9

    def test_shared_scale(self):
        a = sparkline([0, 10], lo=0, hi=100)
        b = sparkline([0, 100], lo=0, hi=100)
        assert a[-1] < b[-1]

    def test_render_series_resamples(self):
        ts = TimeSeries("x")
        for t in range(200):
            ts.append(t, float(t % 17))
        out = render_series(ts, "load", width=40)
        assert out.startswith("load: [")
        assert "min=" in out and "max=" in out


class TestPriorityExperiment:
    def test_gold_nf_gets_double_service(self):
        from repro.experiments.priority_differentiation import run_case

        res = run_case("NFVnice", duration_s=0.5)
        gold = res.chain("gold").throughput_pps
        be = res.chain("best-effort").throughput_pps
        assert gold / be == pytest.approx(2.0, rel=0.2)

    def test_default_ignores_priority(self):
        from repro.experiments.priority_differentiation import run_case

        res = run_case("Default", duration_s=0.5)
        gold = res.chain("gold").throughput_pps
        be = res.chain("best-effort").throughput_pps
        assert gold / be == pytest.approx(1.0, rel=0.1)


class TestWeightChangeAccounting:
    def test_weight_rewrite_on_queued_task_keeps_cfs_consistent(self):
        """Regression: a cgroup write landing while the task is queued must
        not corrupt the scheduler's aggregate ready weight."""
        from repro.sched.base import CoreTask
        from repro.sched.cfs import CFSScheduler
        from repro.sched.core import Core
        from repro.sim.engine import EventLoop

        loop = EventLoop()
        core = Core(loop, CFSScheduler())
        a, b = CoreTask("a"), CoreTask("b")
        # CoreTask is abstract for execution; weight accounting only needs
        # runqueue membership.
        core.add_task(a)
        core.add_task(b)
        sched = core.scheduler
        sched.enqueue(a, 0, wakeup=False)
        sched.enqueue(b, 0, wakeup=False)
        a.weight = 4096
        b.weight = 2
        total = sched._ready_weight
        assert total == 4096 + 2
        sched.dequeue(a, 0)
        sched.dequeue(b, 0)
        assert sched._ready_weight == 0
