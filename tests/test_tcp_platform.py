"""TCP + platform integration: closed-loop congestion control end to end."""

import pytest

from repro.experiments.common import Scenario
from repro.sim.clock import MSEC, SEC
from repro.traffic.tcp import TCPFlow


def tcp_scenario(features: str, bottleneck_cycles: float = 8000,
                 ecn: bool = False, max_cwnd: float = 2000.0):
    scenario = Scenario(scheduler="NORMAL", features=features,
                        enable_ecn=ecn)
    scenario.add_nf("fwd", 300, core=0)
    scenario.add_nf("heavy", bottleneck_cycles, core=1)
    scenario.add_chain("chain", ["fwd", "heavy"])
    flow = scenario.add_flow("tcp", "chain", rate_pps=1.0, pkt_size=1500,
                             protocol="tcp")
    tcp = TCPFlow(scenario.loop, scenario.generator.specs[-1],
                  rtt_ns=1 * MSEC, max_cwnd=max_cwnd)
    tcp.start()
    return scenario, flow, tcp


class TestClosedLoop:
    def test_tcp_converges_near_bottleneck_rate(self):
        scenario, flow, tcp = tcp_scenario("Default")
        scenario.run(3.0)
        # Bottleneck: 2.6e9/(8000+100) cycles ~ 321 kpps ~ 3.85 Gbps.
        bottleneck_pps = scenario.config.cpu_freq_hz / 8100
        delivered_pps = flow.stats.delivered / 3.0
        assert delivered_pps == pytest.approx(bottleneck_pps, rel=0.35)

    def test_unconstrained_tcp_reaches_cwnd_limit(self):
        scenario, flow, tcp = tcp_scenario("Default",
                                           bottleneck_cycles=500,
                                           max_cwnd=100.0)
        scenario.run(2.0)
        # 100 pkts / 1 ms RTT = 100 kpps, far below the path capacity.
        assert flow.stats.lost == 0
        assert flow.stats.delivered / 2.0 == pytest.approx(1e5, rel=0.1)

    def test_losses_cut_cwnd_in_closed_loop(self):
        scenario, flow, tcp = tcp_scenario("Default")
        scenario.run(3.0)
        assert flow.stats.lost > 0
        assert tcp.decreases > 0
        assert tcp.cwnd < 2000.0

    def test_ecn_closed_loop_replaces_losses_with_marks(self):
        plain_s, plain_f, plain_t = tcp_scenario("Default", ecn=False)
        plain_s.run(3.0)
        ecn_s, ecn_f, ecn_t = tcp_scenario("Default", ecn=True)
        ecn_s.run(3.0)
        assert ecn_f.stats.ecn_marks > 0
        assert ecn_f.stats.lost < max(1, plain_f.stats.lost) / 4

    def test_backpressure_entry_discards_count_as_tcp_loss(self):
        """NFVnice throttling a TCP chain registers as loss feedback, so
        the sender backs off rather than hammering a throttled entry."""
        scenario, flow, tcp = tcp_scenario("NFVnice")
        scenario.run(3.0)
        delivered_pps = flow.stats.delivered / 3.0
        bottleneck_pps = scenario.config.cpu_freq_hz / 8100
        # The sender stabilises; it does not sit at max_cwnd (2 Mpps-scale).
        assert tcp.cwnd < 2000.0
        assert delivered_pps <= bottleneck_pps * 1.05


class TestMonitorConvergenceInPlatform:
    def test_weights_track_cost_ratio_in_live_run(self):
        scenario = Scenario(scheduler="BATCH", features="NFVnice",
                            num_rx_threads=2)
        scenario.add_nf("light", 500, core=0)
        scenario.add_nf("heavy", 2000, core=0)
        scenario.add_chain("l", ["light"])
        scenario.add_chain("h", ["heavy"])
        scenario.add_flow("fl", "l", rate_pps=3e6)
        scenario.add_flow("fh", "h", rate_pps=3e6)
        scenario.run(1.0)
        light = scenario.manager.nf_by_name("light")
        heavy = scenario.manager.nf_by_name("heavy")
        # Equal arrival, 1:~3.5 effective cost ratio (incl. overhead).
        ratio = heavy.weight / light.weight
        expected = (2000 + 100) / (500 + 100)
        assert ratio == pytest.approx(expected, rel=0.25)

    def test_weight_updates_happen_on_configured_period(self):
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        scenario.add_nf("nf", 500, core=0)
        scenario.add_chain("c", ["nf"])
        scenario.add_flow("f", "c", rate_pps=1e6)
        scenario.run(0.5)
        monitor = scenario.manager.monitor
        assert monitor is not None
        series = monitor.share_series["nf"]
        if len(series) >= 2:
            gaps = [b - a for a, b in zip(series.times, series.times[1:])]
            assert min(gaps) >= scenario.config.weight_update_ns
