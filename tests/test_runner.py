"""Tests for the parallel campaign runner (:mod:`repro.runner`)."""

from __future__ import annotations

import json

import pytest

from repro.runner.baseline import (
    check_campaign,
    load_baseline,
    write_baseline,
)
from repro.runner.campaign import run_campaign
from repro.runner.digest import combine_digests, digest_of
from repro.runner.pool import run_tasks
from repro.runner.tasks import TaskSpec, derive_task_seed, enumerate_tasks

HELPERS = "tests.runner_helpers"

#: Small enough that a whole grid stays fast, large enough to schedule.
FAST = 0.02


def helper_task(fn, label="t", **kwargs) -> TaskSpec:
    return TaskSpec(experiment="helper", label=label, module=HELPERS,
                    fn=fn, kwargs=kwargs)


# ----------------------------------------------------------------------
# Task enumeration
# ----------------------------------------------------------------------
class TestEnumeration:
    def test_sweep_experiments_fan_out_per_case(self):
        tasks = enumerate_tasks(
            "fig11", "repro.experiments.fig11_chain_permutations",
            duration_s=FAST)
        assert len(tasks) == 6 * 4 * 2   # orders x schedulers x systems
        assert len({t.label for t in tasks}) == len(tasks)
        assert all(t.fn == "run_case" for t in tasks)
        assert all(t.kwargs["duration_s"] == FAST for t in tasks)

    def test_fig12_cases_keep_serial_seeds(self):
        tasks = enumerate_tasks(
            "fig12", "repro.experiments.fig12_workload_mix", duration_s=FAST)
        for task in tasks:
            assert task.kwargs["seed"] == task.kwargs["n_flows"]

    def test_non_sweep_experiment_is_one_main_task(self):
        tasks = enumerate_tasks(
            "fig13", "repro.experiments.fig13_isolation", duration_s=FAST)
        assert len(tasks) == 1
        assert tasks[0].fn == "main"
        assert tasks[0].label == "main"

    def test_default_durations_come_from_the_module(self):
        tasks = enumerate_tasks(
            "fig07", "repro.experiments.fig07_single_core_chain")
        assert all(t.kwargs["duration_s"] == 2.0 for t in tasks)

    def test_campaign_seed_zero_keeps_base_seeds(self):
        assert derive_task_seed(0, "fig07", "a", 7) == 7

    def test_campaign_seed_derives_stable_distinct_seeds(self):
        s1 = derive_task_seed(3, "fig07", "a", 0)
        s2 = derive_task_seed(3, "fig07", "b", 0)
        assert s1 == derive_task_seed(3, "fig07", "a", 0)
        assert s1 != s2
        assert s1 != 0


# ----------------------------------------------------------------------
# The pool: isolation, timeout, retry
# ----------------------------------------------------------------------
class TestPool:
    def test_results_come_back_in_task_order(self):
        specs = [helper_task("ok_text", label=f"t{i}", duration_s=float(i))
                 for i in range(5)]
        outcomes = run_tasks(specs, workers=3)
        assert [o.spec.label for o in outcomes] == [f"t{i}" for i in range(5)]
        assert [o.payload["value"] for o in outcomes] == \
            [f"artifact for {float(i)}" for i in range(5)]

    def test_raising_task_fails_alone(self):
        specs = [helper_task("ok_text", label="good"),
                 helper_task("boom", label="bad"),
                 helper_task("ok_text", label="alsogood")]
        outcomes = run_tasks(specs, workers=2)
        assert [o.status for o in outcomes] == ["ok", "error", "ok"]
        assert outcomes[1].attempts == 2          # retried once, then failed
        assert "deliberate task failure" in outcomes[1].error

    def test_crashing_worker_fails_its_task_not_the_campaign(self):
        specs = [helper_task("hard_crash", label="crash"),
                 helper_task("ok_text", label="survivor")]
        outcomes = run_tasks(specs, workers=2)
        assert outcomes[0].status == "crashed"
        assert outcomes[0].attempts == 2
        assert outcomes[1].ok

    def test_timeout_terminates_and_retries_once(self):
        specs = [helper_task("sleepy", label="slow", sleep_s=30.0)]
        outcomes = run_tasks(specs, workers=1, timeout_s=0.3)
        assert outcomes[0].status == "timeout"
        assert outcomes[0].attempts == 2
        assert outcomes[0].statuses == ["timeout", "timeout"]

    def test_result_published_by_deadline_is_honoured(self, monkeypatch):
        """A payload published before the deadline is a success even when
        the worker process is still alive at the timeout check — the task
        completed; only the process reap is late."""
        import repro.runner.pool as pool_mod
        from tests.runner_helpers import publish_then_hang

        monkeypatch.setattr(pool_mod, "child_entry", publish_then_hang)
        specs = [helper_task("ok_text", label="slow-exit")]
        outcomes = run_tasks(specs, workers=1, timeout_s=0.5)
        assert outcomes[0].ok
        assert outcomes[0].attempts == 1
        assert outcomes[0].payload["value"] == "artifact for 0.0"

    def test_flaky_task_recovers_on_retry(self, tmp_path):
        marker = tmp_path / "marker"
        specs = [helper_task("flaky", label="flaky",
                             marker_path=str(marker))]
        outcomes = run_tasks(specs, workers=1)
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2
        assert outcomes[0].statuses == ["error", "ok"]
        assert outcomes[0].payload["value"] == "recovered on retry"

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_tasks([], workers=0)
        with pytest.raises(ValueError):
            run_tasks([], workers=1, timeout_s=0)


# ----------------------------------------------------------------------
# Campaign aggregation and determinism
# ----------------------------------------------------------------------
class TestCampaign:
    def test_parallel_digests_equal_serial(self):
        serial = run_campaign(["tab05"], workers=1, duration_s=FAST)
        parallel = run_campaign(["tab05"], workers=4, duration_s=FAST)
        assert serial.experiments["tab05"].digest == \
            parallel.experiments["tab05"].digest
        assert serial.experiments["tab05"].artifact == \
            parallel.experiments["tab05"].artifact

    def test_campaign_artifact_matches_serial_main(self):
        from repro.experiments import tab05_multicore_chain

        campaign = run_campaign(["tab05"], workers=2, duration_s=FAST)
        assert campaign.experiments["tab05"].artifact == \
            tab05_multicore_chain.main(duration_s=FAST)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_campaign(["nope"], workers=1)
        with pytest.raises(ValueError, match="duplicate"):
            run_campaign(["tab05", "tab05"], workers=1)

    def test_report_accounting(self):
        campaign = run_campaign(["tab05"], workers=2, duration_s=FAST)
        report = campaign.experiments["tab05"]
        assert report.ok and campaign.ok
        assert len(report.tasks) == 2
        assert report.sim_seconds == pytest.approx(2 * FAST)
        assert report.task_wall_s > 0
        assert report.sim_time_throughput > 0
        assert report.failures == []

    def test_telemetry_merge_is_worker_count_invariant(self):
        """fig09's cases carry latency telemetry; the merged histograms
        (float totals included) must be byte-identical for any worker
        count, like the digest."""
        import json

        serial = run_campaign(["fig09"], workers=1, duration_s=FAST)
        parallel = run_campaign(["fig09"], workers=2, duration_s=FAST)
        ts = serial.experiments["fig09"].telemetry
        tp = parallel.experiments["fig09"].telemetry
        assert ts and "flow_latency" in ts
        assert json.dumps(ts, sort_keys=True) == \
            json.dumps(tp, sort_keys=True)
        merged = ts["flow_latency"]
        # Both cases saw both flows; merged counts are their sums.
        assert set(merged["flows"]) == {"flow1", "flow2"}
        assert serial.experiments["fig09"].digest == \
            parallel.experiments["fig09"].digest

    def test_telemetry_absent_without_tracked_cases(self):
        campaign = run_campaign(["tab05"], workers=1, duration_s=FAST)
        assert campaign.experiments["tab05"].telemetry == {}


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------
class TestDigest:
    def test_digest_sensitive_to_values(self):
        assert digest_of({"a": 1.0}) != digest_of({"a": 1.0000001})

    def test_combine_is_order_sensitive(self):
        assert combine_digests(["a", "b"]) != combine_digests(["b", "a"])


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
class TestBaseline:
    def _campaign(self):
        return run_campaign(["tab05"], workers=2, duration_s=FAST)

    def test_write_then_check_passes(self, tmp_path):
        campaign = self._campaign()
        path = write_baseline(tmp_path / "BENCH_campaign.json", campaign)
        baseline = load_baseline(path)
        assert check_campaign(baseline, campaign) == []
        entry = baseline["experiments"]["tab05"]
        assert entry["digest"] == campaign.experiments["tab05"].digest
        assert entry["tasks"] == 2

    def test_digest_drift_fails_check(self, tmp_path):
        campaign = self._campaign()
        path = write_baseline(tmp_path / "b.json", campaign)
        data = json.loads(path.read_text())
        data["experiments"]["tab05"]["digest"] = "0" * 64
        path.write_text(json.dumps(data))
        problems = check_campaign(load_baseline(path), campaign)
        assert len(problems) == 1
        assert "digest drift" in problems[0]

    def test_wall_clock_regression_fails_check(self, tmp_path):
        campaign = self._campaign()
        path = write_baseline(tmp_path / "b.json", campaign)
        data = json.loads(path.read_text())
        data["experiments"]["tab05"]["task_wall_s"] = 1e-6
        path.write_text(json.dumps(data))
        problems = check_campaign(load_baseline(path), campaign,
                                  max_regression=0.15)
        assert len(problems) == 1
        assert "regression" in problems[0]

    def test_missing_entry_fails_check(self):
        campaign = self._campaign()
        problems = check_campaign(
            {"version": 1, "experiments": {}}, campaign)
        assert len(problems) == 1
        assert "no baseline entry" in problems[0]

    def test_merge_keeps_other_experiments(self, tmp_path):
        campaign = self._campaign()
        path = tmp_path / "b.json"
        path.write_text(json.dumps({
            "version": 1,
            "experiments": {"fig99": {"digest": "x", "task_wall_s": 1.0,
                                      "sim_seconds": 1.0,
                                      "sim_time_throughput": 1.0,
                                      "tasks": 1}},
        }))
        write_baseline(path, campaign)
        data = load_baseline(path)
        assert set(data["experiments"]) == {"fig99", "tab05"}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"version": 99, "experiments": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCampaignCLI:
    def test_campaign_roundtrip_with_check(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "BENCH_campaign.json"
        assert main(["campaign", "tab05", "--workers", "2",
                     "--duration", str(FAST), "--quiet",
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "campaign:" in out and "tab05" in out
        assert baseline.exists()

        assert main(["campaign", "tab05", "--workers", "1",
                     "--duration", str(FAST), "--quiet",
                     "--baseline", str(baseline), "--check"]) == 0
        assert "check passed" in capsys.readouterr().out

    def test_check_detects_tampered_baseline(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "b.json"
        assert main(["campaign", "tab05", "--workers", "1",
                     "--duration", str(FAST), "--quiet",
                     "--baseline", str(baseline)]) == 0
        data = json.loads(baseline.read_text())
        data["experiments"]["tab05"]["digest"] = "f" * 64
        baseline.write_text(json.dumps(data))
        assert main(["campaign", "tab05", "--workers", "1",
                     "--duration", str(FAST), "--quiet",
                     "--baseline", str(baseline), "--check"]) == 1
        assert "digest drift" in capsys.readouterr().err

    def test_artifacts_dir(self, tmp_path, capsys):
        from repro.cli import main

        artifacts = tmp_path / "artifacts"
        assert main(["campaign", "tab05", "--workers", "1",
                     "--duration", str(FAST), "--quiet",
                     "--artifacts", str(artifacts)]) == 0
        capsys.readouterr()
        assert (artifacts / "tab05.txt").read_text().startswith("\n=== Table 5")

    def test_usage_errors(self, capsys):
        from repro.cli import main

        assert main(["campaign", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
        assert main(["campaign", "tab05", "--check"]) == 2
        assert "--check requires --baseline" in capsys.readouterr().err
