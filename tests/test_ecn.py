"""Tests for the ECN marker."""

import dataclasses

import pytest

from repro.core.ecn import ECNMarker
from repro.platform.config import PlatformConfig
from repro.platform.packet import Flow
from repro.platform.ring import PacketRing


@pytest.fixture
def ecn_config():
    return PlatformConfig(ecn_ewma_alpha=0.5, ecn_min_fraction=0.2,
                          ecn_max_fraction=0.6)


def test_ewma_tracks_queue(ecn_config):
    marker = ECNMarker(ecn_config)
    ring = PacketRing(capacity=100, name="r")
    ring.enqueue(Flow("f"), 80, 0)
    v1 = marker.observe(ring)
    v2 = marker.observe(ring)
    assert 0 < v1 < v2 <= 80


def test_no_marks_below_min(ecn_config):
    marker = ECNMarker(ecn_config)
    ring = PacketRing(capacity=100, name="r")
    ring.enqueue(Flow("f"), 10, 0)
    for _ in range(50):
        marker.observe(ring)
    assert marker.mark_fraction(ring) == 0.0
    assert not marker.should_mark(ring)


def test_full_marking_above_max(ecn_config):
    marker = ECNMarker(ecn_config)
    ring = PacketRing(capacity=100, name="r")
    ring.enqueue(Flow("f"), 90, 0)
    for _ in range(50):
        marker.observe(ring)
    assert marker.mark_fraction(ring) == 1.0


def test_ramp_monotone(ecn_config):
    marker = ECNMarker(ecn_config)
    ring = PacketRing(capacity=100, name="r")
    fractions = []
    for fill in (25, 35, 45, 55):
        ring.clear()
        ring.enqueue(Flow("f"), fill, 0)
        for _ in range(100):
            marker.observe(ring)
        fractions.append(marker.mark_fraction(ring))
    assert fractions == sorted(fractions)
    assert 0.0 < fractions[1] < 1.0


def test_mark_only_responsive_flows(ecn_config):
    marker = ECNMarker(ecn_config)
    udp = Flow("u", protocol="udp")
    tcp = Flow("t", protocol="tcp")
    assert marker.mark(udp, 10, 0) == 0
    assert marker.mark(tcp, 10, 0) == 10
    assert tcp.stats.ecn_marks == 10
    assert udp.stats.ecn_marks == 0
    assert marker.marked_packets == 10


def test_mark_notifies_tcp_model(ecn_config):
    marker = ECNMarker(ecn_config)

    class FakeTCP:
        marks = 0

        def on_ecn_mark(self, count, now):
            self.marks += count

    tcp = Flow("t", protocol="tcp")
    tcp.tcp = FakeTCP()
    marker.mark(tcp, 7, 0)
    assert tcp.tcp.marks == 7


def test_separate_rings_independent_ewma(ecn_config):
    marker = ECNMarker(ecn_config)
    r1 = PacketRing(capacity=100, name="r1")
    r2 = PacketRing(capacity=100, name="r2")
    r1.enqueue(Flow("f"), 90, 0)
    for _ in range(50):
        marker.observe(r1)
        marker.observe(r2)
    assert marker.ewma_of(r1) > 80
    assert marker.ewma_of(r2) == 0.0
