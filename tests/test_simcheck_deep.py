"""Whole-program ``repro check --deep``: flow passes, cache, baseline.

The fixture battery under ``tests/fixtures/simcheck/deep/`` holds one
bad/clean pair per cross-module rule; the bad member must fire exactly
its rule (with a call-chain witness where the rule promises one) and
the clean member must stay silent.  The repo's own ``src/`` tree is
asserted deep-clean with zero suppressions — the acceptance bar for
this PR.
"""

from __future__ import annotations

import dataclasses
import io
import json
import shutil
from collections import Counter
from pathlib import Path

import pytest

from repro.check import registry
from repro.check.flow import DEEP_RULES, EXPLAIN
from repro.check.graph import ProjectGraph, extract_summary
from repro.check.simcheck import RULES_VERSION, main, run_deep

REPO = Path(__file__).resolve().parents[1]
DEEP = REPO / "tests" / "fixtures" / "simcheck" / "deep"


def deep_findings(path, **kwargs):
    result = run_deep([str(path)], cache_path=None, **kwargs)
    return result.deep_findings


# ----------------------------------------------------------------------
# Fixture battery
# ----------------------------------------------------------------------
#: fixture pair -> (rule code, expected finding count in bad/)
PAIRS = {
    "digest_leak": ("SIM601", 1),
    "registry": ("SIM602", 1),
    "transitive": ("SIM611", 1),
    "rng": ("SIM612", 1),
}


@pytest.mark.parametrize(
    "pair,code,count",
    [(p, c, k) for p, (c, k) in sorted(PAIRS.items())],
    ids=sorted(PAIRS),
)
def test_bad_fixture_fires_exactly_its_rule(pair, code, count):
    findings = deep_findings(DEEP / pair / "bad")
    assert Counter(f.code for f in findings) == {code: count}


@pytest.mark.parametrize("pair", sorted(PAIRS) + ["pool"])
def test_clean_fixtures_are_silent(pair):
    assert deep_findings(DEEP / pair / "clean") == []


def test_pool_bad_fixture_fires_all_three_rules():
    findings = deep_findings(DEEP / "pool" / "bad")
    assert Counter(f.code for f in findings) == {
        "SIM701": 2, "SIM702": 1, "SIM703": 1}


def test_digest_leak_finding_carries_call_chain_witness():
    (finding,) = deep_findings(DEEP / "digest_leak" / "bad")
    assert finding.code == "SIM601"
    assert finding.path.endswith("collect.py")
    assert "loop_stats" in finding.message
    assert [q.rsplit(".", 1)[1] for q in finding.chain] == \
        ["report_digest", "collect"]
    assert "witness:" in finding.render()


def test_transitive_wall_clock_witness_goes_root_to_site():
    (finding,) = deep_findings(DEEP / "transitive" / "bad")
    assert finding.code == "SIM611"
    assert finding.path.endswith("timeutil.py")  # the offending call site
    assert "time.time" in finding.message
    assert [q.rsplit(".", 1)[1] for q in finding.chain] == \
        ["boot_clock", "stamp"]


def test_suppression_applies_to_deep_findings(tmp_path):
    src = (DEEP / "pool" / "bad" / "repro" / "sim" / "state.py").read_text()
    src = src.replace("    _MODE = mode",
                      "    _MODE = mode  # simcheck: ignore[SIM702]")
    dest = tmp_path / "repro" / "sim"
    dest.mkdir(parents=True)
    (dest / "state.py").write_text(src)
    result = run_deep([str(tmp_path)], cache_path=None)
    codes = Counter(f.code for f in result.deep_findings)
    assert "SIM702" not in codes
    assert codes["SIM701"] == 2
    assert result.suppressed == 1


def test_missing_digest_safety_marker_is_flagged(tmp_path):
    dest = tmp_path / "repro" / "runner"
    dest.mkdir(parents=True)
    (dest / "digest.py").write_text(
        "import hashlib\n\n\ndef digest_of(value):\n"
        "    return hashlib.sha256(repr(value).encode()).hexdigest()\n")
    findings = deep_findings(tmp_path)
    assert any(f.code == "SIM603" for f in findings)
    (dest / "digest.py").write_text(
        '__digest_safety__ = "digest-checked"\n'
        "import hashlib\n\n\ndef digest_of(value):\n"
        "    return hashlib.sha256(repr(value).encode()).hexdigest()\n")
    assert deep_findings(tmp_path) == []


def test_parallel_jobs_match_serial():
    serial = deep_findings(DEEP / "pool" / "bad", jobs=1)
    # jobs=2 still runs serially below the parallel threshold, so feed
    # the whole fixture tree through both paths and compare.
    a = run_deep([str(DEEP)], cache_path=None, jobs=1)
    b = run_deep([str(DEEP)], cache_path=None, jobs=2)
    assert [f.to_dict() for f in a.deep_findings] == \
        [f.to_dict() for f in b.deep_findings]
    assert serial  # sanity: the fixture fires at all


def test_repo_src_tree_is_deep_clean_with_zero_suppressions():
    out = io.StringIO()
    assert main([str(REPO / "src")], out=out, deep=True, no_cache=True) == 0
    assert "0 finding(s), 0 suppression(s)" in out.getvalue()


# ----------------------------------------------------------------------
# Parse errors stay per-file in deep mode
# ----------------------------------------------------------------------
def test_deep_parse_error_keeps_scanning_and_exits_two(tmp_path):
    tree = tmp_path / "repro" / "runner"
    tree.mkdir(parents=True)
    for name in ("report.py", "collect.py"):
        shutil.copy(
            DEEP / "digest_leak" / "bad" / "repro" / "runner" / name,
            tree / name)
    (tree / "broken.py").write_text("def f(:\n")
    out = io.StringIO()
    assert main([str(tmp_path)], as_json=True, out=out, deep=True,
                no_cache=True) == 2
    payload = json.loads(out.getvalue())
    assert len(payload["errors"]) == 1
    assert payload["errors"][0]["path"].endswith("broken.py")
    leak = [f for f in payload["findings"] if f["code"] == "SIM601"]
    assert len(leak) == 1  # the graph still linked the parseable files
    assert leak[0]["chain"]  # witness survives JSON


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------
def _fixture_copy(tmp_path):
    dest = tmp_path / "tree"
    shutil.copytree(DEEP / "pool" / "bad", dest)
    return dest


def test_cache_hit_on_unchanged_content(tmp_path):
    tree = _fixture_copy(tmp_path)
    cache = str(tmp_path / "cache.json")
    first = run_deep([str(tree)], cache_path=cache)
    assert first.cache_misses == 1 and first.cache_hits == 0
    second = run_deep([str(tree)], cache_path=cache)
    assert second.cache_hits == 1 and second.cache_misses == 0
    assert [f.to_dict() for f in first.deep_findings] == \
        [f.to_dict() for f in second.deep_findings]


def test_cache_invalidated_by_content_change(tmp_path):
    tree = _fixture_copy(tmp_path)
    cache = str(tmp_path / "cache.json")
    run_deep([str(tree)], cache_path=cache)
    state = tree / "repro" / "sim" / "state.py"
    state.write_text(state.read_text() + "\n# touched\n")
    result = run_deep([str(tree)], cache_path=cache)
    assert result.cache_misses == 1 and result.cache_hits == 0


def test_cache_invalidated_by_rule_version_bump(tmp_path, monkeypatch):
    tree = _fixture_copy(tmp_path)
    cache = str(tmp_path / "cache.json")
    run_deep([str(tree)], cache_path=cache)
    monkeypatch.setattr("repro.check.simcheck.RULES_VERSION",
                        RULES_VERSION + "-test")
    result = run_deep([str(tree)], cache_path=cache)
    assert result.cache_misses == 1 and result.cache_hits == 0


def test_corrupt_cache_is_ignored(tmp_path):
    tree = _fixture_copy(tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    result = run_deep([str(tree)], cache_path=str(cache))
    assert result.cache_misses == 1
    assert result.deep_findings  # analysis unaffected


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------
def test_baseline_suppresses_known_findings_only(tmp_path):
    baseline = str(tmp_path / "baseline.json")
    out = io.StringIO()
    assert main([str(DEEP / "pool" / "bad")], out=out, deep=True,
                no_cache=True, baseline=baseline,
                update_baseline=True) == 0
    data = json.loads(Path(baseline).read_text())
    assert data["format"] == "simcheck-baseline-v1"
    assert sum(data["fingerprints"].values()) == 4

    out = io.StringIO()
    assert main([str(DEEP / "pool" / "bad")], as_json=True, out=out,
                deep=True, no_cache=True, baseline=baseline) == 0
    payload = json.loads(out.getvalue())
    assert payload["findings"] == []
    assert payload["baselined"] == 4

    # A different tree's findings are NOT covered by this baseline.
    out = io.StringIO()
    assert main([str(DEEP / "transitive" / "bad")], out=out, deep=True,
                no_cache=True, baseline=baseline) == 1


def test_update_baseline_requires_baseline_path():
    out = io.StringIO()
    assert main([str(DEEP / "pool" / "bad")], out=out, deep=True,
                no_cache=True, update_baseline=True) == 2


# ----------------------------------------------------------------------
# --explain and rule docs
# ----------------------------------------------------------------------
def test_explain_known_code():
    out = io.StringIO()
    assert main([], out=out, explain_code="SIM601") == 0
    text = out.getvalue()
    assert "SIM601" in text and "digest" in text.lower()


def test_explain_unknown_code():
    out = io.StringIO()
    assert main([], out=out, explain_code="SIM999") == 2


def test_every_rule_code_has_explain_text():
    from repro.check.simcheck import iter_rules
    codes = {r.code for r in iter_rules()} | set(DEEP_RULES)
    assert codes <= set(EXPLAIN)
    assert all(len(EXPLAIN[c]) > 80 for c in codes)


# ----------------------------------------------------------------------
# Registry consistency against the real ScenarioResult
# ----------------------------------------------------------------------
def test_registry_partition_matches_scenario_result():
    from repro.experiments.common import ScenarioResult
    names = [f.name for f in dataclasses.fields(ScenarioResult)]
    assert registry.validate_fields(names) == []


def test_registry_partition_is_disjoint():
    assert not (registry.DIGEST_CHECKED_FIELDS
                & registry.DIGEST_INVISIBLE_FIELDS)
    assert registry.TELEMETRY_EXPORT_FIELDS <= \
        registry.DIGEST_INVISIBLE_FIELDS


def test_ensure_digest_safe_guards_the_hash_input():
    from repro.runner.digest import ensure_digest_safe
    ok = {"scheduler": "cfs", "chains": []}
    assert ensure_digest_safe(ok) is ok
    with pytest.raises(ValueError, match="SIM601"):
        ensure_digest_safe({"scheduler": "cfs", "causality": {}})
    with pytest.raises(ValueError, match="digest-invisible"):
        ensure_digest_safe({"telemetry": {}})


def test_marked_modules_exist_and_carry_markers():
    import importlib
    for rel, kind in registry.MARKED_MODULES.items():
        module = importlib.import_module(
            rel[:-3].replace("/", "."))
        assert kind in getattr(module, "__digest_safety__")


# ----------------------------------------------------------------------
# Graph internals worth pinning
# ----------------------------------------------------------------------
def test_graph_links_alias_self_and_nested_calls(tmp_path):
    a = tmp_path / "repro"
    (a / "sim").mkdir(parents=True)
    (a / "sim" / "mod.py").write_text(
        "from repro.sim.helper import top\n\n\n"
        "class C:\n"
        "    def run(self):\n"
        "        return self.step()\n\n"
        "    def step(self):\n"
        "        def inner():\n"
        "            return top()\n"
        "        return inner()\n")
    (a / "sim" / "helper.py").write_text("def top():\n    return 1\n")
    summaries = {}
    for path in sorted((a / "sim").glob("*.py")):
        summaries[str(path)] = extract_summary(str(path),
                                               path.read_text())
    graph = ProjectGraph(summaries)
    edges = graph.edges
    assert "repro.sim.mod.C.step" in edges["repro.sim.mod.C.run"]
    assert "repro.sim.mod.C.step.inner" in edges["repro.sim.mod.C.step"]
    assert "repro.sim.helper.top" in edges["repro.sim.mod.C.step.inner"]
    parents = graph.reachable_from(["repro.sim.mod.C.run"])
    chain = graph.chain_to(parents, "repro.sim.helper.top")
    assert chain == ["repro.sim.mod.C.run", "repro.sim.mod.C.step",
                     "repro.sim.mod.C.step.inner", "repro.sim.helper.top"]
