"""Unit tests for time units and cycle conversion."""

import pytest

from repro.sim.clock import (
    CPU_FREQ_HZ,
    CYCLES_PER_NSEC,
    MSEC,
    SEC,
    USEC,
    cycles_to_ns,
    ns_to_cycles,
)


def test_unit_ratios():
    assert USEC == 1_000
    assert MSEC == 1_000 * USEC
    assert SEC == 1_000 * MSEC


def test_default_frequency_is_testbed():
    # Xeon E5-2697 v3 @ 2.60 GHz (paper §4.1).
    assert CPU_FREQ_HZ == 2_600_000_000


def test_cycles_per_nsec():
    assert CYCLES_PER_NSEC == pytest.approx(2.6)


def test_round_trip_conversion():
    for cycles in (1, 120, 270, 550, 4500, 1e9):
        assert ns_to_cycles(cycles_to_ns(cycles)) == pytest.approx(cycles)


def test_known_conversions():
    # 2.6 GHz: 2.6 cycles per ns.
    assert cycles_to_ns(2_600_000_000) == pytest.approx(SEC)
    assert cycles_to_ns(260) == pytest.approx(100.0)
    assert ns_to_cycles(1000) == pytest.approx(2600.0)


def test_custom_frequency():
    assert cycles_to_ns(1_000_000_000, freq_hz=1e9) == pytest.approx(SEC)
