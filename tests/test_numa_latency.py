"""Tests for the NUMA model and end-to-end latency accounting."""

import pytest

from repro.experiments.common import Scenario, build_linear_chain
from repro.platform.packet import Flow, PacketSegment
from repro.platform.ring import PacketRing


class TestOriginTimestamps:
    def test_segment_origin_defaults_to_enqueue(self):
        seg = PacketSegment(Flow("f"), 5, enqueue_ns=100)
        assert seg.origin_ns == 100

    def test_origin_survives_split(self):
        seg = PacketSegment(Flow("f"), 10, enqueue_ns=500, origin_ns=42)
        head = seg.split(4)
        assert head.origin_ns == seg.origin_ns == 42

    def test_ring_preserves_origin_across_hops(self):
        r1, r2 = PacketRing(capacity=64), PacketRing(capacity=64)
        f = Flow("f")
        r1.enqueue(f, 8, now_ns=10)
        seg = r1.dequeue(8)[0]
        r2.enqueue_segment(seg, now_ns=500)
        out = r2.dequeue(8)[0]
        assert out.origin_ns == 10
        assert out.enqueue_ns == 500

    def test_different_origins_do_not_merge(self):
        ring = PacketRing(capacity=64)
        f = Flow("f")
        ring.enqueue(f, 4, now_ns=100, origin_ns=1)
        ring.enqueue(f, 4, now_ns=100, origin_ns=2)
        segs = ring.dequeue(8)
        assert len(segs) == 2
        assert [s.origin_ns for s in segs] == [1, 2]


class TestEndToEndLatency:
    def test_chain_latency_recorded(self):
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        build_linear_chain(scenario, (120, 270), core=0)
        scenario.add_flow("f", "chain", rate_pps=500_000.0)
        result = scenario.run(0.3)
        chain = scenario.manager.chains["chain"]
        assert chain.latency_hist.count == chain.completed
        assert result.chain("chain").latency_p50_us > 0
        assert result.chain("chain").latency_p99_us >= \
            result.chain("chain").latency_p50_us

    def test_underloaded_latency_is_small(self):
        """At 3% load, end-to-end latency is dominated by poll periods —
        well under a millisecond."""
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        build_linear_chain(scenario, (120, 270), core=0)
        scenario.add_flow("f", "chain", rate_pps=200_000.0)
        result = scenario.run(0.3)
        assert result.chain("chain").latency_p50_us < 1000

    def test_overload_latency_reflects_queueing(self):
        under = Scenario(scheduler="BATCH", features="Default")
        build_linear_chain(under, (120, 270), core=0)
        under.add_flow("f", "chain", rate_pps=200_000.0)
        low = under.run(0.3).chain("chain").latency_p50_us

        over = Scenario(scheduler="BATCH", features="Default")
        build_linear_chain(over, (120, 2700), core=0)
        over.add_flow("f", "chain", line_rate_fraction=1.0)
        high = over.run(0.3).chain("chain").latency_p50_us
        assert high > 10 * low


class TestNUMA:
    def test_socket_derivation(self):
        scenario = Scenario(scheduler="NORMAL", features="NFVnice")
        mgr = scenario.manager
        assert mgr.core(0).socket == 0
        assert mgr.core(27).socket == 0
        assert mgr.core(28).socket == 1

    def test_cross_socket_hop_charges_penalty(self):
        scenario = Scenario(scheduler="NORMAL", features="NFVnice")
        build_linear_chain(scenario, (500, 500), core=(0, 28))
        scenario.add_flow("f", "chain", rate_pps=1e5)
        scenario.manager.start()
        nf1 = scenario.manager.nf_by_name("nf1")
        nf2 = scenario.manager.nf_by_name("nf2")
        cfg = scenario.config
        base = 500 + cfg.nf_overhead_cycles
        assert nf1.cost_model.mean_cycles == pytest.approx(base)
        assert not nf1.numa_remote_input
        assert nf2.numa_remote_input
        assert nf2.cost_model.mean_cycles == pytest.approx(
            base + cfg.numa_penalty_cycles)

    def test_local_placement_no_penalty(self):
        scenario = Scenario(scheduler="NORMAL", features="NFVnice")
        build_linear_chain(scenario, (500, 500), core=(0, 1))
        scenario.add_flow("f", "chain", rate_pps=1e5)
        scenario.manager.start()
        nf2 = scenario.manager.nf_by_name("nf2")
        assert not nf2.numa_remote_input

    def test_cross_socket_throughput_cost(self):
        from repro.experiments.numa_placement import run_case

        local = run_case("local", duration_s=0.3)
        cross = run_case("cross", duration_s=0.3)
        assert cross.total_throughput_pps < local.total_throughput_pps

    def test_penalty_disabled(self):
        scenario = Scenario(scheduler="NORMAL", features="NFVnice",
                            numa_penalty_cycles=0.0)
        build_linear_chain(scenario, (500, 500), core=(0, 28))
        scenario.add_flow("f", "chain", rate_pps=1e5)
        scenario.manager.start()
        nf2 = scenario.manager.nf_by_name("nf2")
        assert not nf2.numa_remote_input
