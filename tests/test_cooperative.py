"""Tests for the cooperative (L-thread-style) scheduler."""

import math

import pytest

from repro.sched import make_scheduler
from repro.sched.base import CoreTask
from repro.sched.cooperative import CooperativeScheduler


def test_factory_aliases():
    for alias in ("COOP", "cooperative", "LTHREAD"):
        assert isinstance(make_scheduler(alias), CooperativeScheduler)


def test_fifo_order():
    sched = CooperativeScheduler()
    tasks = [CoreTask(f"t{i}") for i in range(3)]
    for t in tasks:
        sched.enqueue(t, 0, wakeup=True)
    assert [sched.pick_next(0).name for _ in range(3)] == ["t0", "t1", "t2"]


def test_unbounded_quantum():
    sched = CooperativeScheduler()
    assert sched.time_slice(CoreTask("t"), 0) == math.inf


def test_no_wakeup_preemption():
    sched = CooperativeScheduler()
    assert not sched.preempts_on_wake(CoreTask("a"), CoreTask("b"), 1e12)


def test_weights_ignored():
    sched = CooperativeScheduler()
    t = CoreTask("t", weight=4096)
    sched.charge(t, 1e9)
    assert t.vruntime == 0.0


def test_double_enqueue_rejected():
    sched = CooperativeScheduler()
    t = CoreTask("t")
    sched.enqueue(t, 0, wakeup=True)
    with pytest.raises(RuntimeError):
        sched.enqueue(t, 0, wakeup=True)


def test_dequeue():
    sched = CooperativeScheduler()
    a, b = CoreTask("a"), CoreTask("b")
    sched.enqueue(a, 0, wakeup=True)
    sched.enqueue(b, 0, wakeup=True)
    sched.dequeue(a, 0)
    assert sched.nr_ready == 1


class TestPaperDrawbacks:
    def test_misbehaving_nf_starves_cooperative_core(self):
        from repro.experiments.cooperative_comparison import run_misbehaving

        coop = run_misbehaving("COOP", duration_s=0.4)
        cfs = run_misbehaving("NORMAL", duration_s=0.4)
        assert coop.chain("chain").throughput_pps == 0
        assert coop.nf("spinner").cpu_share > 0.99
        assert cfs.chain("chain").throughput_pps > 1e6

    def test_no_selective_prioritisation(self):
        from repro.experiments.cooperative_comparison import (
            run_prioritisation)

        coop = run_prioritisation("COOP", duration_s=0.4)
        cfs = run_prioritisation("NORMAL", duration_s=0.4)
        coop_ratio = (coop.chain("light").throughput_pps + 1) / \
            (coop.chain("heavy").throughput_pps + 1)
        cfs_ratio = cfs.chain("light").throughput_pps / \
            cfs.chain("heavy").throughput_pps
        # CFS+weights equalise the flows; COOP cannot.
        assert cfs_ratio == pytest.approx(1.0, rel=0.15)
        assert coop_ratio < 0.5 or coop_ratio > 2.0

    def test_backpressure_composes_with_cooperative_threads(self):
        from repro.experiments.cooperative_comparison import (
            run_backpressure_compose)

        plain = run_backpressure_compose("COOP", "Default", duration_s=0.4)
        bkpr = run_backpressure_compose("COOP", "OnlyBKPR", duration_s=0.4)
        assert bkpr.total_wasted_pps < plain.total_wasted_pps / 10
        assert bkpr.total_throughput_pps >= plain.total_throughput_pps
